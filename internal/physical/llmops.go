package physical

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/clean"
	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/prompt"
	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// llmKeyScanOp materializes the key-attribute values of an LLM-bound
// relation: one list prompt, then "more results" prompts carrying the
// already-seen keys, until no new keys arrive or the iteration cap is hit
// (Section 4's two critical steps: iteration and termination threshold).
//
// The page chain is inherently sequential — each prompt excludes the keys
// of every previous page — but in pipelined mode the keys of a page flow
// downstream as soon as the page lands, so attribute fetches and filters
// start while the scan is still iterating.
type llmKeyScanOp struct {
	scan *logical.Scan
	out  *schema.Schema

	// stop-and-go state
	rows   []schema.Tuple
	cursor int
	// pipelined state
	pipe *pipe
}

func (s *llmKeyScanOp) Schema() *schema.Schema { return s.out }

func (s *llmKeyScanOp) Open(c *Context) error {
	if c.Client == nil {
		return fmt.Errorf("physical: LLM scan of %s without an LLM client", s.scan.Table.Name)
	}
	conds, err := pushedConditions(s.scan.PushedFilter)
	if err != nil {
		return err
	}
	keyKind := s.out.Columns[0].Type
	maxIter := c.MaxScanIterations
	if maxIter <= 0 {
		maxIter = 12
	}

	if c.Pipelined() {
		s.openPipelined(c, conds, keyKind, maxIter)
		return nil
	}

	client := c.ClientFor(llm.RoleKeyscan, s.scan.Table.Backend)
	var keys []string
	seen := map[string]bool{}
	for iter := 0; iter < maxIter; iter++ {
		p := c.Prompts.KeyList(s.scan.Table.Name, s.scan.Table.KeyColumn, conds, keys)
		c.Metrics.Add(s.scan, 1, 0, 0)
		resp, err := c.CompleteOn(client, p)
		if err != nil {
			return fmt.Errorf("physical: key scan of %s: %w", s.scan.Table.Name, err)
		}
		added, done := scanPage(resp, c.Cleaner, seen, &keys)
		if done || added == 0 {
			break
		}
	}

	s.rows = s.rows[:0]
	for _, k := range keys {
		if t, ok := keyTuple(keyKind, k); ok {
			s.rows = append(s.rows, t)
		}
	}
	c.Metrics.Add(s.scan, 0, 0, len(s.rows))
	s.cursor = 0
	return nil
}

// openPipelined streams the scan: a producer runs the sequential page
// chain on the query scheduler and emits each page's new keys downstream
// stamped with the page's virtual completion time.
func (s *llmKeyScanOp) openPipelined(c *Context, conds []prompt.Condition, keyKind value.Kind, maxIter int) {
	client := c.ClientFor(llm.RoleKeyscan, s.scan.Table.Backend)
	s.pipe = newPipe(c.pipeBuffer())
	s.pipe.run(func() error {
		var keys []string
		seen := map[string]bool{}
		var vt llm.VTime
		for iter := 0; iter < maxIter; iter++ {
			if s.pipe.stopped() {
				return nil
			}
			p := c.Prompts.KeyList(s.scan.Table.Name, s.scan.Table.KeyColumn, conds, keys)
			c.Metrics.Add(s.scan, 1, 0, 0)
			resp, pageVT, err := c.Scheduler.Do(client, p, vt)
			if err != nil {
				return fmt.Errorf("physical: key scan of %s: %w", s.scan.Table.Name, err)
			}
			vt = pageVT
			prev := len(keys)
			added, done := scanPage(resp, c.Cleaner, seen, &keys)
			for _, k := range keys[prev:] {
				if t, ok := keyTuple(keyKind, k); ok {
					c.Metrics.Add(s.scan, 0, 0, 1)
					if !s.pipe.send(pipeRow{row: t, vt: vt}) {
						return nil
					}
				}
			}
			if done || added == 0 {
				return nil
			}
		}
		return nil
	})
}

// scanPage parses one list-prompt response, appending keys not seen on
// earlier pages to *keys. done reports a Done/Unknown termination marker.
func scanPage(resp string, cleaner *clean.Cleaner, seen map[string]bool, keys *[]string) (added int, done bool) {
	trimmed := strings.TrimSpace(resp)
	if strings.EqualFold(trimmed, prompt.DoneMarker) || strings.EqualFold(trimmed, prompt.UnknownMarker) {
		return 0, true
	}
	for _, item := range clean.SplitList(resp) {
		k := cleaner.Key(item)
		if k == "" {
			continue
		}
		lower := strings.ToLower(k)
		if seen[lower] {
			continue
		}
		seen[lower] = true
		*keys = append(*keys, k)
		added++
	}
	return added, false
}

// keyTuple converts one cleaned key into a single-column tuple, enforcing
// the key's type constraint.
func keyTuple(kind value.Kind, k string) (schema.Tuple, bool) {
	v, err := value.ParseAs(kind, k)
	if err != nil || v.IsNull() {
		return nil, false
	}
	return schema.Tuple{v}, true
}

func (s *llmKeyScanOp) Close() error {
	if s.pipe != nil {
		s.pipe.close()
	}
	return nil
}

func (s *llmKeyScanOp) Next() (schema.Tuple, error) {
	t, _, err := s.NextVT()
	return t, err
}

func (s *llmKeyScanOp) NextVT() (schema.Tuple, llm.VTime, error) {
	if s.pipe != nil {
		r, ok, err := s.pipe.next()
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return nil, 0, io.EOF
		}
		return r.row, r.vt, nil
	}
	if s.cursor >= len(s.rows) {
		return nil, 0, io.EOF
	}
	t := s.rows[s.cursor]
	s.cursor++
	return t, 0, nil
}

// pushedConditions converts a pushed-down predicate into prompt
// conditions.
func pushedConditions(e ast.Expr) ([]prompt.Condition, error) {
	if e == nil {
		return nil, nil
	}
	var out []prompt.Condition
	for _, c := range splitAnd(e) {
		b, ok := c.(*ast.Binary)
		if !ok {
			return nil, fmt.Errorf("physical: cannot push %s into a prompt", c.String())
		}
		ref, okL := b.Left.(*ast.ColumnRef)
		lit, okR := b.Right.(*ast.Literal)
		if !okL || !okR {
			return nil, fmt.Errorf("physical: cannot push %s into a prompt", c.String())
		}
		out = append(out, prompt.Condition{
			Attr:     prompt.Humanize(ref.Name),
			OpPhrase: prompt.OpPhrase(b.Op),
			Value:    lit.Val.String(),
		})
	}
	return out, nil
}

// llmFetchAttrOp retrieves one attribute per input tuple, appending the
// cleaned value as a new column. Stop-and-go issues one batched prompt
// wave per operator; pipelined mode submits the per-key prompt (and its
// cross-model verification, concurrently) the moment the input tuple
// arrives, and awaits answers in input order so results are identical.
type llmFetchAttrOp struct {
	node  *logical.FetchAttr
	input Operator
	out   *schema.Schema

	kind value.Kind

	// stop-and-go state
	rows   []schema.Tuple
	cursor int
	// pipelined state
	pipe *pipe
	pc   *Context
}

func (f *llmFetchAttrOp) Schema() *schema.Schema { return f.out }

func (f *llmFetchAttrOp) Open(c *Context) error {
	if c.Client == nil {
		return fmt.Errorf("physical: LLM fetch of %s without an LLM client", f.node.Attr)
	}
	if err := f.input.Open(c); err != nil {
		return err
	}
	f.kind = f.out.Columns[f.out.Len()-1].Type

	if c.Pipelined() {
		f.openPipelined(c)
		return nil
	}

	rows, err := drain(f.input)
	f.input.Close()
	if err != nil {
		return err
	}

	prompts := make([]string, len(rows))
	for i, row := range rows {
		key := row[f.node.KeyCol].String()
		prompts[i] = c.Prompts.Attr(f.node.Table.Name, key, f.node.Attr)
	}
	fetchPrompts := len(rows)
	if c.Verifier != nil {
		fetchPrompts *= 2
	}
	c.Metrics.Add(f.node, fetchPrompts, len(rows), len(rows))
	answers, err := c.CompleteBatch(c.ClientFor(llm.RoleFetch, f.node.Table.Backend), prompts)
	if err != nil {
		return fmt.Errorf("physical: fetching %s.%s: %w", f.node.Table.Name, f.node.Attr, err)
	}

	values := make([]value.Value, len(rows))
	for i := range rows {
		values[i] = c.Cleaner.Cell(answers[i], f.kind)
	}

	// Cross-model verification (Section 6): ask a second model the same
	// question and NULL out disagreements.
	if c.Verifier != nil {
		verdicts, err := c.CompleteBatch(c.Verifier, prompts)
		if err != nil {
			return fmt.Errorf("physical: verifying %s.%s: %w", f.node.Table.Name, f.node.Attr, err)
		}
		tol := verifyTolerance(c)
		for i := range values {
			if values[i].IsNull() {
				continue
			}
			other := c.Cleaner.Cell(verdicts[i], f.kind)
			if !valuesAgree(values[i], other, tol) {
				values[i] = value.Null()
			}
		}
	}

	f.rows = make([]schema.Tuple, len(rows))
	for i, row := range rows {
		f.rows[i] = append(row.Clone(), values[i])
	}
	f.cursor = 0
	return nil
}

// openPipelined streams the fetch: the producer submits the attribute
// prompt — and, with a verifier configured, the verification prompt
// concurrently — as each input tuple arrives, anchored at the tuple's
// virtual time.
func (f *llmFetchAttrOp) openPipelined(c *Context) {
	f.pc = c
	f.pipe = newPipe(c.pipeBuffer())
	input := f.input
	client := c.ClientFor(llm.RoleFetch, f.node.Table.Backend)
	f.pipe.run(func() error {
		defer input.Close()
		for {
			row, vt, err := nextVT(input)
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			key := row[f.node.KeyCol].String()
			p := c.Prompts.Attr(f.node.Table.Name, key, f.node.Attr)
			prompts := 1
			r := pipeRow{row: row, vt: vt, main: c.Scheduler.Submit(client, p, vt)}
			if c.Verifier != nil {
				prompts = 2
				r.verify = c.Scheduler.Submit(c.Verifier, p, vt)
			}
			c.Metrics.Add(f.node, prompts, 1, 1)
			if !f.pipe.send(r) {
				return nil
			}
		}
	})
}

func verifyTolerance(c *Context) float64 {
	if c.VerifyTolerance > 0 {
		return c.VerifyTolerance
	}
	return 0.1
}

// valuesAgree compares two independently produced answers: numerics within
// a relative tolerance, strings case-insensitively.
func valuesAgree(a, b value.Value, tol float64) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	af, aNum := a.Numeric()
	bf, bNum := b.Numeric()
	if aNum && bNum {
		if af == 0 {
			return bf == 0
		}
		d := af - bf
		if d < 0 {
			d = -d
		}
		ref := af
		if ref < 0 {
			ref = -ref
		}
		return d/ref <= tol
	}
	return strings.EqualFold(strings.TrimSpace(a.String()), strings.TrimSpace(b.String()))
}

func (f *llmFetchAttrOp) Close() error {
	if f.pipe != nil {
		f.pipe.close() // the producer closes the input on exit
	}
	return nil
}

func (f *llmFetchAttrOp) Next() (schema.Tuple, error) {
	t, _, err := f.NextVT()
	return t, err
}

func (f *llmFetchAttrOp) NextVT() (schema.Tuple, llm.VTime, error) {
	if f.pipe == nil {
		if f.cursor >= len(f.rows) {
			return nil, 0, io.EOF
		}
		t := f.rows[f.cursor]
		f.cursor++
		return t, 0, nil
	}

	r, ok, err := f.pipe.next()
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return nil, 0, io.EOF
	}
	answer, vt, err := r.main.Wait()
	if err != nil {
		return nil, 0, fmt.Errorf("physical: fetching %s.%s: %w", f.node.Table.Name, f.node.Attr, err)
	}
	v := f.pc.Cleaner.Cell(answer, f.kind)
	if r.verify != nil {
		verdict, verifyVT, err := r.verify.Wait()
		if err != nil {
			return nil, 0, fmt.Errorf("physical: verifying %s.%s: %w", f.node.Table.Name, f.node.Attr, err)
		}
		if verifyVT > vt {
			vt = verifyVT
		}
		if !v.IsNull() {
			other := f.pc.Cleaner.Cell(verdict, f.kind)
			if !valuesAgree(v, other, verifyTolerance(f.pc)) {
				v = value.Null()
			}
		}
	}
	return append(r.row.Clone(), v), vt, nil
}

// llmFilterOp keeps tuples for which the per-key boolean prompt answers
// yes ("Has city Chicago population more than 1000000? Answer yes or no.").
type llmFilterOp struct {
	node  *logical.LLMFilter
	input Operator

	// stop-and-go state
	rows   []schema.Tuple
	cursor int
	// pipelined state
	pipe *pipe
	pc   *Context
}

func (f *llmFilterOp) Schema() *schema.Schema { return f.node.Schema() }

func (f *llmFilterOp) Open(c *Context) error {
	if c.Client == nil {
		return fmt.Errorf("physical: LLM filter without an LLM client")
	}
	if err := f.input.Open(c); err != nil {
		return err
	}

	ref := f.node.Cond.Left.(*ast.ColumnRef)
	lit := f.node.Cond.Right.(*ast.Literal)
	opPhrase := prompt.OpPhrase(f.node.Cond.Op)
	filterPrompt := func(row schema.Tuple) string {
		key := row[f.node.KeyCol].String()
		return c.Prompts.Filter(f.node.Table.Name, key, ref.Name, opPhrase, lit.Val.String())
	}

	if c.Pipelined() {
		f.openPipelined(c, filterPrompt)
		return nil
	}

	rows, err := drain(f.input)
	f.input.Close()
	if err != nil {
		return err
	}

	prompts := make([]string, len(rows))
	for i, row := range rows {
		prompts[i] = filterPrompt(row)
	}
	answers, err := c.CompleteBatch(c.ClientFor(llm.RoleFilter, f.node.Table.Backend), prompts)
	if err != nil {
		return fmt.Errorf("physical: LLM filter %s: %w", f.node.Cond.String(), err)
	}

	f.rows = f.rows[:0]
	for i, row := range rows {
		if isYes(answers[i]) {
			f.rows = append(f.rows, row)
		}
	}
	c.Metrics.Add(f.node, len(rows), len(rows), len(f.rows))
	f.cursor = 0
	return nil
}

// openPipelined streams the filter: the boolean prompt for each tuple is
// submitted as the tuple arrives; Next awaits verdicts in input order and
// keeps the yes rows.
func (f *llmFilterOp) openPipelined(c *Context, filterPrompt func(schema.Tuple) string) {
	f.pc = c
	f.pipe = newPipe(c.pipeBuffer())
	input := f.input
	client := c.ClientFor(llm.RoleFilter, f.node.Table.Backend)
	f.pipe.run(func() error {
		defer input.Close()
		for {
			row, vt, err := nextVT(input)
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			c.Metrics.Add(f.node, 1, 1, 0)
			r := pipeRow{row: row, vt: vt, main: c.Scheduler.Submit(client, filterPrompt(row), vt)}
			if !f.pipe.send(r) {
				return nil
			}
		}
	})
}

func isYes(s string) bool {
	s = strings.ToLower(strings.TrimSpace(s))
	return strings.HasPrefix(s, "yes") || strings.HasPrefix(s, "true")
}

func (f *llmFilterOp) Close() error {
	if f.pipe != nil {
		f.pipe.close() // the producer closes the input on exit
	}
	return nil
}

func (f *llmFilterOp) Next() (schema.Tuple, error) {
	t, _, err := f.NextVT()
	return t, err
}

func (f *llmFilterOp) NextVT() (schema.Tuple, llm.VTime, error) {
	if f.pipe == nil {
		if f.cursor >= len(f.rows) {
			return nil, 0, io.EOF
		}
		t := f.rows[f.cursor]
		f.cursor++
		return t, 0, nil
	}

	for {
		r, ok, err := f.pipe.next()
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return nil, 0, io.EOF
		}
		answer, vt, err := r.main.Wait()
		if err != nil {
			return nil, 0, fmt.Errorf("physical: LLM filter %s: %w", f.node.Cond.String(), err)
		}
		if isYes(answer) {
			f.pc.Metrics.Add(f.node, 0, 0, 1)
			return r.row, vt, nil
		}
	}
}
