package physical

import (
	"repro/internal/expr"
	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// hashJoinOp implements equi-joins (inner and left outer) by building a
// hash table over the right input. An optional residual predicate runs on
// the combined tuple.
type hashJoinOp struct {
	left, right Operator
	out         *schema.Schema
	leftKeys    []expr.Func // compiled against the left schema
	rightKeys   []expr.Func // compiled against the right schema
	residual    expr.Func   // compiled against the combined schema; may be nil
	leftOuter   bool

	table   map[string][]schema.Tuple
	current []schema.Tuple // pending matches for the current left row
	cursor  int
	leftRow schema.Tuple
	matched bool
	done    bool
	buildVT llm.VTime // the hash table exists once the right side drained
	leftVT  llm.VTime // virtual time of the current left row
}

func (j *hashJoinOp) Schema() *schema.Schema { return j.out }

func (j *hashJoinOp) Open(c *Context) error {
	if err := j.right.Open(c); err != nil {
		return err
	}
	rows, buildVT, err := drainVT(j.right)
	j.right.Close()
	if err != nil {
		return err
	}
	j.buildVT = buildVT
	j.table = make(map[string][]schema.Tuple, len(rows))
	for _, r := range rows {
		k, err := joinKey(j.rightKeys, r)
		if err != nil {
			return err
		}
		if k == "" {
			continue // NULL keys never match
		}
		j.table[k] = append(j.table[k], r)
	}
	j.current, j.cursor, j.done = nil, 0, false
	j.leftRow = nil
	return j.left.Open(c)
}

func (j *hashJoinOp) Close() error { return j.left.Close() }

func (j *hashJoinOp) Next() (schema.Tuple, error) {
	t, _, err := j.NextVT()
	return t, err
}

// NextVT stamps each output row with the later of the build side's
// high-water mark and the current left row's availability.
func (j *hashJoinOp) NextVT() (schema.Tuple, llm.VTime, error) {
	t, err := j.nextRow()
	if err != nil {
		return nil, 0, err
	}
	vt := j.buildVT
	if j.leftVT > vt {
		vt = j.leftVT
	}
	return t, vt, nil
}

func (j *hashJoinOp) nextRow() (schema.Tuple, error) {
	for {
		// Emit pending matches.
		for j.cursor < len(j.current) {
			combined := j.leftRow.Concat(j.current[j.cursor])
			j.cursor++
			if j.residual != nil {
				ok, err := expr.EvalBool(j.residual, combined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			j.matched = true
			return combined, nil
		}
		// Left-outer: emit the unmatched left row padded with NULLs.
		if j.leftRow != nil && j.leftOuter && !j.matched {
			pad := make(schema.Tuple, j.out.Len()-len(j.leftRow))
			for i := range pad {
				pad[i] = value.Null()
			}
			row := j.leftRow.Concat(pad)
			j.leftRow = nil
			return row, nil
		}
		// Advance the left input.
		t, vt, err := nextVT(j.left)
		if err != nil {
			return nil, err
		}
		j.leftRow = t
		j.leftVT = vt
		j.matched = false
		j.cursor = 0
		k, err := joinKey(j.leftKeys, t)
		if err != nil {
			return nil, err
		}
		j.current = j.table[k]
	}
}

// joinKey renders the composite key; "" marks a NULL component.
func joinKey(funcs []expr.Func, t schema.Tuple) (string, error) {
	var b []byte
	for _, f := range funcs {
		v, err := f(t)
		if err != nil {
			return "", err
		}
		if v.IsNull() {
			return "", nil
		}
		b = append(b, v.Key()...)
		b = append(b, 0x1f)
	}
	return string(b), nil
}

// nlJoinOp is the fallback nested-loop join for non-equi or cross joins.
type nlJoinOp struct {
	left, right Operator
	out         *schema.Schema
	pred        expr.Func // may be nil (cross join)
	leftOuter   bool

	rightRows []schema.Tuple
	leftRow   schema.Tuple
	cursor    int
	matched   bool
	buildVT   llm.VTime
	leftVT    llm.VTime
}

func (j *nlJoinOp) Schema() *schema.Schema { return j.out }

func (j *nlJoinOp) Open(c *Context) error {
	if err := j.right.Open(c); err != nil {
		return err
	}
	rows, buildVT, err := drainVT(j.right)
	j.right.Close()
	if err != nil {
		return err
	}
	j.rightRows = rows
	j.buildVT = buildVT
	j.leftRow, j.cursor = nil, 0
	return j.left.Open(c)
}

func (j *nlJoinOp) Close() error { return j.left.Close() }

func (j *nlJoinOp) Next() (schema.Tuple, error) {
	t, _, err := j.NextVT()
	return t, err
}

func (j *nlJoinOp) NextVT() (schema.Tuple, llm.VTime, error) {
	t, err := j.nextRow()
	if err != nil {
		return nil, 0, err
	}
	vt := j.buildVT
	if j.leftVT > vt {
		vt = j.leftVT
	}
	return t, vt, nil
}

func (j *nlJoinOp) nextRow() (schema.Tuple, error) {
	for {
		if j.leftRow != nil {
			for j.cursor < len(j.rightRows) {
				combined := j.leftRow.Concat(j.rightRows[j.cursor])
				j.cursor++
				if j.pred != nil {
					ok, err := expr.EvalBool(j.pred, combined)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				j.matched = true
				return combined, nil
			}
			if j.leftOuter && !j.matched {
				pad := make(schema.Tuple, j.out.Len()-len(j.leftRow))
				for i := range pad {
					pad[i] = value.Null()
				}
				row := j.leftRow.Concat(pad)
				j.leftRow = nil
				return row, nil
			}
			j.leftRow = nil
		}
		t, vt, err := nextVT(j.left)
		if err != nil {
			return nil, err
		}
		j.leftRow = t
		j.leftVT = vt
		j.cursor = 0
		j.matched = false
	}
}

// buildJoin selects hash vs nested-loop based on the ON condition.
func buildJoin(node *logical.Join, left, right Operator) (Operator, error) {
	out := node.Schema()
	leftOuter := node.Type == ast.JoinLeft

	if node.On == nil {
		return &nlJoinOp{left: left, right: right, out: out, leftOuter: leftOuter}, nil
	}

	// Partition conjuncts into equi-keys across sides and residuals.
	var leftExprs, rightExprs []ast.Expr
	var residuals []ast.Expr
	for _, c := range splitAnd(node.On) {
		l, r, ok := equiSides(c, left.Schema(), right.Schema())
		if !ok {
			residuals = append(residuals, c)
			continue
		}
		leftExprs = append(leftExprs, l)
		rightExprs = append(rightExprs, r)
	}

	if len(leftExprs) == 0 {
		pred, err := expr.Compile(node.On, out)
		if err != nil {
			return nil, err
		}
		return &nlJoinOp{left: left, right: right, out: out, pred: pred, leftOuter: leftOuter}, nil
	}

	j := &hashJoinOp{left: left, right: right, out: out, leftOuter: leftOuter}
	for i := range leftExprs {
		lf, err := expr.Compile(leftExprs[i], left.Schema())
		if err != nil {
			return nil, err
		}
		rf, err := expr.Compile(rightExprs[i], right.Schema())
		if err != nil {
			return nil, err
		}
		j.leftKeys = append(j.leftKeys, lf)
		j.rightKeys = append(j.rightKeys, rf)
	}
	if len(residuals) > 0 {
		res := residuals[0]
		for _, c := range residuals[1:] {
			res = &ast.Binary{Op: "AND", Left: res, Right: c}
		}
		pred, err := expr.Compile(res, out)
		if err != nil {
			return nil, err
		}
		j.residual = pred
	}
	return j, nil
}

func splitAnd(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.Binary); ok && b.Op == "AND" {
		return append(splitAnd(b.Left), splitAnd(b.Right)...)
	}
	return []ast.Expr{e}
}

// equiSides decomposes "a = b" with a resolvable on one side and b on the
// other, returning the expressions oriented (left, right).
func equiSides(c ast.Expr, left, right *schema.Schema) (ast.Expr, ast.Expr, bool) {
	b, ok := c.(*ast.Binary)
	if !ok || b.Op != "=" {
		return nil, nil, false
	}
	resolves := func(e ast.Expr, s *schema.Schema) bool {
		ok := true
		ast.Walk(e, func(x ast.Expr) bool {
			if ref, isRef := x.(*ast.ColumnRef); isRef {
				if s.IndexOf(ref.Table, ref.Name) < 0 {
					ok = false
					return false
				}
			}
			return true
		})
		// A literal-only side must not count as a join key.
		return ok && len(ast.ColumnRefs(e)) > 0
	}
	switch {
	case resolves(b.Left, left) && resolves(b.Right, right):
		return b.Left, b.Right, true
	case resolves(b.Right, left) && resolves(b.Left, right):
		return b.Right, b.Left, true
	}
	return nil, nil, false
}
