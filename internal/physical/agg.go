package physical

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/expr"
	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// accumulator folds values of one aggregate within one group.
type accumulator interface {
	add(v value.Value) error
	result() value.Value
}

type countAcc struct {
	star     bool
	distinct bool
	seen     map[string]bool
	n        int64
}

func (a *countAcc) add(v value.Value) error {
	if !a.star && v.IsNull() {
		return nil
	}
	if a.distinct {
		if a.seen == nil {
			a.seen = map[string]bool{}
		}
		k := v.Key()
		if a.seen[k] {
			return nil
		}
		a.seen[k] = true
	}
	a.n++
	return nil
}

func (a *countAcc) result() value.Value { return value.Int(a.n) }

type sumAcc struct {
	distinct bool
	seen     map[string]bool
	sum      float64
	any      bool
	avg      bool
	n        int64
}

func (a *sumAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	f, ok := v.Numeric()
	if !ok {
		// Un-typed text (cleaning disabled): try a strict parse, and skip
		// the cell when it is not a number — the SQL NULL treatment.
		parsed, err := value.ParseAs(value.KindFloat, v.String())
		if err != nil || parsed.IsNull() {
			return nil
		}
		f, _ = parsed.Numeric()
	}
	if a.distinct {
		if a.seen == nil {
			a.seen = map[string]bool{}
		}
		k := v.Key()
		if a.seen[k] {
			return nil
		}
		a.seen[k] = true
	}
	a.sum += f
	a.n++
	a.any = true
	return nil
}

func (a *sumAcc) result() value.Value {
	if !a.any {
		return value.Null()
	}
	if a.avg {
		return value.Float(a.sum / float64(a.n))
	}
	return value.Float(a.sum)
}

type minMaxAcc struct {
	max  bool
	best value.Value
	any  bool
}

func (a *minMaxAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	if !a.any {
		a.best, a.any = v, true
		return nil
	}
	c, err := value.Compare(v, a.best)
	if err != nil {
		return nil // incomparable values are skipped
	}
	if (a.max && c > 0) || (!a.max && c < 0) {
		a.best = v
	}
	return nil
}

func (a *minMaxAcc) result() value.Value {
	if !a.any {
		return value.Null()
	}
	return a.best
}

// firstAcc keeps the first non-NULL value (implicit GROUP BY columns).
type firstAcc struct {
	v   value.Value
	any bool
}

func (a *firstAcc) add(v value.Value) error {
	if !a.any && !v.IsNull() {
		a.v, a.any = v, true
	}
	return nil
}

func (a *firstAcc) result() value.Value {
	if !a.any {
		return value.Null()
	}
	return a.v
}

func newAccumulator(call *ast.FuncCall) (accumulator, error) {
	switch call.Name {
	case "FIRST":
		return &firstAcc{}, nil
	case "COUNT":
		_, star := starArg(call)
		return &countAcc{star: star, distinct: call.Distinct}, nil
	case "SUM":
		return &sumAcc{distinct: call.Distinct}, nil
	case "AVG":
		return &sumAcc{distinct: call.Distinct, avg: true}, nil
	case "MIN":
		return &minMaxAcc{}, nil
	case "MAX":
		return &minMaxAcc{max: true}, nil
	default:
		return nil, fmt.Errorf("physical: unknown aggregate %s", call.Name)
	}
}

func starArg(call *ast.FuncCall) (ast.Expr, bool) {
	if len(call.Args) == 1 {
		if _, ok := call.Args[0].(*ast.Star); ok {
			return call.Args[0], true
		}
	}
	return nil, false
}

// hashAggOp materializes the input, groups and folds.
type hashAggOp struct {
	input Operator
	node  *logical.Aggregate
	out   *schema.Schema

	groupFns []expr.Func
	argFns   []expr.Func // nil entry = COUNT(*)

	results []schema.Tuple
	cursor  int
	vt      llm.VTime // every group is available once the whole input is
}

func newHashAgg(node *logical.Aggregate, input Operator) (*hashAggOp, error) {
	op := &hashAggOp{input: input, node: node, out: node.Schema()}
	in := input.Schema()
	for _, g := range node.GroupBy {
		f, err := expr.Compile(g, in)
		if err != nil {
			return nil, err
		}
		op.groupFns = append(op.groupFns, f)
	}
	for _, spec := range node.Aggs {
		if _, star := starArg(spec.Call); star {
			op.argFns = append(op.argFns, nil)
			continue
		}
		if len(spec.Call.Args) != 1 {
			return nil, fmt.Errorf("physical: %s expects one argument", spec.Call.Name)
		}
		f, err := expr.Compile(spec.Call.Args[0], in)
		if err != nil {
			return nil, err
		}
		op.argFns = append(op.argFns, f)
	}
	return op, nil
}

func (a *hashAggOp) Schema() *schema.Schema { return a.out }

func (a *hashAggOp) Open(c *Context) error {
	if err := a.input.Open(c); err != nil {
		return err
	}
	rows, vt, err := drainVT(a.input)
	a.input.Close()
	if err != nil {
		return err
	}
	a.vt = vt

	type group struct {
		key  schema.Tuple
		accs []accumulator
	}
	groups := map[string]*group{}
	var order []string

	for _, row := range rows {
		keyVals := make(schema.Tuple, len(a.groupFns))
		for i, f := range a.groupFns {
			v, err := f(row)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		idx := make([]int, len(keyVals))
		for i := range idx {
			idx[i] = i
		}
		k := keyVals.Key(idx)
		g, ok := groups[k]
		if !ok {
			g = &group{key: keyVals}
			for _, spec := range a.node.Aggs {
				acc, err := newAccumulator(spec.Call)
				if err != nil {
					return err
				}
				g.accs = append(g.accs, acc)
			}
			groups[k] = g
			order = append(order, k)
		}
		for i, acc := range g.accs {
			var v value.Value
			if a.argFns[i] == nil {
				v = value.Int(1) // COUNT(*): any non-value
			} else {
				v, err = a.argFns[i](row)
				if err != nil {
					return err
				}
			}
			if err := acc.add(v); err != nil {
				return err
			}
		}
	}

	// Global aggregate over empty input still yields one row.
	if len(a.groupFns) == 0 && len(order) == 0 {
		g := &group{}
		for _, spec := range a.node.Aggs {
			acc, err := newAccumulator(spec.Call)
			if err != nil {
				return err
			}
			g.accs = append(g.accs, acc)
		}
		groups[""] = g
		order = append(order, "")
	}

	a.results = a.results[:0]
	for _, k := range order {
		g := groups[k]
		row := make(schema.Tuple, 0, a.out.Len())
		row = append(row, g.key...)
		for _, acc := range g.accs {
			row = append(row, acc.result())
		}
		a.results = append(a.results, row)
	}
	a.cursor = 0
	return nil
}

func (a *hashAggOp) Close() error { return nil }

func (a *hashAggOp) Next() (schema.Tuple, error) {
	t, _, err := a.NextVT()
	return t, err
}

func (a *hashAggOp) NextVT() (schema.Tuple, llm.VTime, error) {
	if a.cursor >= len(a.results) {
		return nil, 0, io.EOF
	}
	t := a.results[a.cursor]
	a.cursor++
	return t, a.vt, nil
}

// sortOp materializes and orders the input.
type sortOp struct {
	input Operator
	items []ast.OrderItem
	fns   []expr.Func
	desc  []bool

	rows   []schema.Tuple
	cursor int
	vt     llm.VTime // the sorted run exists once the whole input does
}

func newSort(node *logical.Sort, input Operator) (*sortOp, error) {
	op := &sortOp{input: input, items: node.Items}
	for _, it := range node.Items {
		f, err := expr.Compile(it.Expr, input.Schema())
		if err != nil {
			return nil, err
		}
		op.fns = append(op.fns, f)
		op.desc = append(op.desc, it.Desc)
	}
	return op, nil
}

func (s *sortOp) Schema() *schema.Schema { return s.input.Schema() }

func (s *sortOp) Open(c *Context) error {
	if err := s.input.Open(c); err != nil {
		return err
	}
	rows, vt, err := drainVT(s.input)
	s.input.Close()
	if err != nil {
		return err
	}
	s.vt = vt

	// Precompute sort keys once per row.
	keys := make([][]value.Value, len(rows))
	for i, row := range rows {
		keys[i] = make([]value.Value, len(s.fns))
		for j, f := range s.fns {
			v, err := f(row)
			if err != nil {
				return err
			}
			keys[i][j] = v
		}
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		a, b := keys[idx[x]], keys[idx[y]]
		for j := range s.fns {
			c := compareForSort(a[j], b[j])
			if c == 0 {
				continue
			}
			if s.desc[j] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	s.rows = make([]schema.Tuple, len(rows))
	for i, j := range idx {
		s.rows[i] = rows[j]
	}
	s.cursor = 0
	return nil
}

// compareForSort orders values with NULLs last and incomparable values by
// their textual form, so sorting never fails.
func compareForSort(a, b value.Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return 1
	case b.IsNull():
		return -1
	}
	if c, err := value.Compare(a, b); err == nil {
		return c
	}
	as, bs := a.String(), b.String()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

func (s *sortOp) Close() error { return nil }

func (s *sortOp) Next() (schema.Tuple, error) {
	t, _, err := s.NextVT()
	return t, err
}

func (s *sortOp) NextVT() (schema.Tuple, llm.VTime, error) {
	if s.cursor >= len(s.rows) {
		return nil, 0, io.EOF
	}
	t := s.rows[s.cursor]
	s.cursor++
	return t, s.vt, nil
}
