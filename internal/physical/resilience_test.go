package physical

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
)

// flakyOnceLLM fails the first call for every distinct prompt with a
// transient error, then delegates — the minimal blip a resilient
// transport must absorb without the executor noticing.
type flakyOnceLLM struct {
	inner llm.Client
	mu    sync.Mutex
	seen  map[string]bool
}

func (f *flakyOnceLLM) Name() string { return f.inner.Name() }

func (f *flakyOnceLLM) Complete(ctx context.Context, p string) (string, error) {
	f.mu.Lock()
	first := !f.seen[p]
	f.seen[p] = true
	f.mu.Unlock()
	if first {
		return "", llm.Transient(errors.New("first-call blip"))
	}
	return f.inner.Complete(ctx, p)
}

// TestPipelinedThroughResilientTransport: the streaming executor over a
// ResilientClient must absorb a transient blip on every prompt and
// produce the same relation as the fault-free run — the physical layer
// never sees a fault.
func TestPipelinedThroughResilientTransport(t *testing.T) {
	clean, err := Run(pipelinedCtx(context.Background(), townClient(), 2, 4), townTree(t))
	if err != nil {
		t.Fatal(err)
	}

	rc := llm.NewResilient(
		&flakyOnceLLM{inner: townClient(), seen: map[string]bool{}},
		llm.ResilientConfig{
			BreakerThreshold: -1,
			Sleep:            func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
		})
	got, err := Run(pipelinedCtx(context.Background(), rc, 2, 4), townTree(t))
	if err != nil {
		t.Fatalf("pipelined run through resilient transport: %v", err)
	}
	if got.String() != clean.String() {
		t.Errorf("relation diverged under transient faults:\nfault-free:\n%s\ngot:\n%s", clean, got)
	}
	if c := rc.Counters(); c.Retries == 0 || c.Faults == 0 {
		t.Errorf("transport absorbed nothing (retries=%d faults=%d) — flaky client inert", c.Retries, c.Faults)
	}
}

// TestPipelinedFailureGoroutineHygiene: a pipelined query aborted by a
// mid-flight model failure must wind down every operator and worker
// goroutine it started.
func TestPipelinedFailureGoroutineHygiene(t *testing.T) {
	baseline := runtime.NumGoroutine()
	client := townClient()
	client.failOn = "population of the town Beta"
	if _, err := Run(pipelinedCtx(context.Background(), client, 2, 4), townTree(t)); err == nil {
		t.Fatal("pipelined model failure must propagate")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked after pipelined failure: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
