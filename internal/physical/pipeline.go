// Pipelined streaming execution of the LLM operators: instead of
// draining their input and issuing one blocking batch (stop-and-go), the
// operators run a bounded producer that submits prompts to the query's
// shared llm.Scheduler as upstream tuples arrive and hands the in-flight
// futures downstream through a channel. Answers are awaited in input
// order, so results are bit-identical to the stop-and-go execution while
// prompt waves of different operators overlap: an attribute fetch starts
// while the key scan is still iterating "more results" pages, and the
// verifier double-checks cells concurrently with the primary fetch.
//
// The channel is bounded (Context.PipelineBuffer) and producers watch a
// done signal, so closing the operator tree — a satisfied LIMIT, an
// error, normal completion — stops upstream prompt issue promptly.
package physical

import (
	"sync"

	"repro/internal/llm"
	"repro/internal/schema"
)

// pipeRow is one tuple in flight between a streaming producer and its
// operator's Next: the tuple, the virtual time its upstream chain
// completed, and the futures extending the chain.
type pipeRow struct {
	row    schema.Tuple
	vt     llm.VTime
	main   *llm.Future // fetch or filter prompt; nil for key-scan rows
	verify *llm.Future // cross-model verification; nil without a verifier
}

// pipe is the shared producer/consumer plumbing of the streaming LLM
// operators: a bounded channel of in-flight rows, a done signal that
// stops the producer (LIMIT early termination, Close), and the
// producer's exit error, surfaced to the consumer after the stream
// drains.
type pipe struct {
	out  chan pipeRow
	done chan struct{}
	stop sync.Once
	wg   sync.WaitGroup
	err  error // written by the producer before out closes
}

func newPipe(buffer int) *pipe {
	return &pipe{out: make(chan pipeRow, buffer), done: make(chan struct{})}
}

// run starts produce in the background. The producer owns its upstream
// iteration; its error reaches the consumer through next.
func (p *pipe) run(produce func() error) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.err = produce()
		close(p.out)
	}()
}

// send delivers one row downstream, giving up when the consumer has
// terminated; it reports whether the producer should keep going.
func (p *pipe) send(r pipeRow) bool {
	select {
	case p.out <- r:
		return true
	case <-p.done:
		return false
	}
}

// stopped reports whether the consumer has terminated the stream; the
// producer polls it between prompts so a closed tree stops issuing new
// work even when the channel still has room.
func (p *pipe) stopped() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// next yields the following in-flight row. ok=false means the stream
// ended: err carries the producer's failure, nil for clean EOF.
func (p *pipe) next() (r pipeRow, ok bool, err error) {
	r, ok = <-p.out
	if !ok {
		return pipeRow{}, false, p.err
	}
	return r, true, nil
}

// close tells the producer to stop and waits for it to exit, so Close
// returns with no goroutine still touching the operator or its input.
func (p *pipe) close() {
	p.stop.Do(func() { close(p.done) })
	p.wg.Wait()
}
