package physical

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/schema"
)

// Env provides what compilation needs beyond the plan itself: access to
// the DB-side base relations.
type Env struct {
	// Data returns the materialized relation for a DB-bound table.
	Data func(table string) (*schema.Relation, error)
}

// Compile lowers a logical plan to a physical operator tree.
func Compile(n logical.Node, env *Env) (Operator, error) {
	switch node := n.(type) {
	case *logical.Scan:
		if node.Source == "LLM" {
			return &llmKeyScanOp{scan: node, out: node.Schema()}, nil
		}
		if env == nil || env.Data == nil {
			return nil, fmt.Errorf("physical: no data source for table %s", node.Table.Name)
		}
		rel, err := env.Data(node.Table.Name)
		if err != nil {
			return nil, err
		}
		return NewMemScan(node.Schema(), rel), nil

	case *logical.CachedScan:
		// Residual execution over a relation the result cache
		// materialized earlier: no data source, no scheduler, no
		// prompts — just an in-memory scan under the producer's schema.
		// Rel is nil during candidate validation (the session compiles
		// against an empty stand-in) and attached before execution.
		rel := node.Rel
		if rel == nil {
			rel = schema.NewRelation(node.Schema())
		}
		return NewMemScan(node.Schema(), rel), nil

	case *logical.FetchAttr:
		input, err := Compile(node.Input, env)
		if err != nil {
			return nil, err
		}
		return &llmFetchAttrOp{node: node, input: input, out: node.Schema()}, nil

	case *logical.LLMFilter:
		input, err := Compile(node.Input, env)
		if err != nil {
			return nil, err
		}
		return &llmFilterOp{node: node, input: input}, nil

	case *logical.Filter:
		input, err := Compile(node.Input, env)
		if err != nil {
			return nil, err
		}
		pred, err := expr.Compile(node.Cond, input.Schema())
		if err != nil {
			return nil, err
		}
		return NewFilter(input, pred), nil

	case *logical.Join:
		left, err := Compile(node.Left, env)
		if err != nil {
			return nil, err
		}
		right, err := Compile(node.Right, env)
		if err != nil {
			return nil, err
		}
		return buildJoin(node, left, right)

	case *logical.Aggregate:
		input, err := Compile(node.Input, env)
		if err != nil {
			return nil, err
		}
		return newHashAgg(node, input)

	case *logical.Project:
		input, err := Compile(node.Input, env)
		if err != nil {
			return nil, err
		}
		op := &projectOp{input: input, out: node.Schema()}
		for _, it := range node.Items {
			f, err := expr.Compile(it.Expr, input.Schema())
			if err != nil {
				return nil, err
			}
			op.funcs = append(op.funcs, f)
		}
		return op, nil

	case *logical.StripProject:
		input, err := Compile(node.Input, env)
		if err != nil {
			return nil, err
		}
		return &stripOp{input: input, out: node.Schema(), keep: node.Keep}, nil

	case *logical.Distinct:
		input, err := Compile(node.Input, env)
		if err != nil {
			return nil, err
		}
		k := node.KeyCols
		if k <= 0 {
			k = input.Schema().Len()
		}
		return &distinctOp{input: input, keyCols: k}, nil

	case *logical.Sort:
		input, err := Compile(node.Input, env)
		if err != nil {
			return nil, err
		}
		return newSort(node, input)

	case *logical.Limit:
		input, err := Compile(node.Input, env)
		if err != nil {
			return nil, err
		}
		return &limitOp{input: input, n: node.N, offset: node.Offset}, nil

	default:
		return nil, fmt.Errorf("physical: cannot compile %T", n)
	}
}
