// Package physical executes logical plans with an iterator (Open/Next/
// Close) operator model. Traditional operators (scans, filters, joins,
// aggregation, sorting) implement exact relational semantics over
// materialized tuples; the LLM-backed operators (key scan, attribute
// fetch, boolean filter) realize the paper's prompt-based physical
// operators against any llm.Client.
package physical

import (
	"context"
	"fmt"
	"io"

	"repro/internal/clean"
	"repro/internal/expr"
	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/schema"
)

// Context carries the runtime environment shared by all operators of one
// query execution.
type Context struct {
	Ctx     context.Context
	Client  llm.Client      // nil for DB-only plans
	Prompts *prompt.Builder // prompt construction
	Cleaner *clean.Cleaner  // answer normalization
	// Cache, when non-nil, is the engine's prompt cache: completions are
	// reused across operators and queries, concurrent identical prompts
	// collapse into one model call, and duplicate prompts within a batch
	// cost one completion. Operators consult it transparently through
	// Complete and CompleteBatch.
	Cache *llm.Cache
	// MaxScanIterations caps the "return more results" loop per leaf
	// (Section 4's termination threshold).
	MaxScanIterations int
	// BatchWorkers bounds the concurrency of batched prompt execution.
	BatchWorkers int
	// Verifier, when non-nil, is a second model that double-checks every
	// fetched attribute value (Section 6, "Knowledge of the Unknown":
	// "verify generated query answers by another model"). Cells the
	// verifier disagrees with become NULL.
	Verifier llm.Client
	// VerifyTolerance is the relative error under which two numeric
	// answers count as agreeing (default 0.1 when Verifier is set).
	VerifyTolerance float64
}

// Complete issues one prompt through the query's client, consulting the
// prompt cache when one is configured.
func (c *Context) Complete(prompt string) (string, error) {
	return llm.CompleteCached(c.Ctx, c.Client, c.Cache, prompt)
}

// CompleteBatch issues prompts through the given client (the query's main
// client or its verifier) with bounded concurrency, deduplicating and
// caching when a prompt cache is configured.
func (c *Context) CompleteBatch(client llm.Client, prompts []string) ([]string, error) {
	workers := c.BatchWorkers
	if workers <= 0 {
		workers = llm.DefaultBatchWorkers
	}
	return llm.CompleteBatchCached(c.Ctx, client, c.Cache, prompts, workers)
}

// Operator is one physical operator.
type Operator interface {
	Schema() *schema.Schema
	Open(*Context) error
	Next() (schema.Tuple, error) // io.EOF at end of stream
	Close() error
}

// Run drains an operator into a materialized relation.
func Run(ctx *Context, op Operator) (*schema.Relation, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer op.Close()
	out := schema.NewRelation(op.Schema().Clone())
	for {
		t, err := op.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Append(t)
	}
}

// memScan iterates a materialized relation under the scan's qualified
// schema.
type memScan struct {
	out  *schema.Schema
	rel  *schema.Relation
	next int
}

// NewMemScan builds a scan over data with the given output schema. The
// data's column order must match the schema.
func NewMemScan(out *schema.Schema, data *schema.Relation) Operator {
	return &memScan{out: out, rel: data}
}

func (s *memScan) Schema() *schema.Schema { return s.out }
func (s *memScan) Open(*Context) error    { s.next = 0; return nil }
func (s *memScan) Close() error           { return nil }

func (s *memScan) Next() (schema.Tuple, error) {
	if s.next >= len(s.rel.Rows) {
		return nil, io.EOF
	}
	t := s.rel.Rows[s.next]
	s.next++
	return t, nil
}

// filterOp streams tuples passing the predicate.
type filterOp struct {
	input Operator
	cond  expr.Func
}

// NewFilter compiles cond against the input schema.
func NewFilter(input Operator, cond expr.Func) Operator {
	return &filterOp{input: input, cond: cond}
}

func (f *filterOp) Schema() *schema.Schema { return f.input.Schema() }
func (f *filterOp) Open(c *Context) error  { return f.input.Open(c) }
func (f *filterOp) Close() error           { return f.input.Close() }

func (f *filterOp) Next() (schema.Tuple, error) {
	for {
		t, err := f.input.Next()
		if err != nil {
			return nil, err
		}
		ok, err := expr.EvalBool(f.cond, t)
		if err != nil {
			return nil, err
		}
		if ok {
			return t, nil
		}
	}
}

// projectOp evaluates one function per output column.
type projectOp struct {
	input Operator
	out   *schema.Schema
	funcs []expr.Func
}

func (p *projectOp) Schema() *schema.Schema { return p.out }
func (p *projectOp) Open(c *Context) error  { return p.input.Open(c) }
func (p *projectOp) Close() error           { return p.input.Close() }

func (p *projectOp) Next() (schema.Tuple, error) {
	t, err := p.input.Next()
	if err != nil {
		return nil, err
	}
	out := make(schema.Tuple, len(p.funcs))
	for i, f := range p.funcs {
		v, err := f(t)
		if err != nil {
			return nil, fmt.Errorf("physical: projecting column %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// stripOp keeps the first k columns.
type stripOp struct {
	input Operator
	out   *schema.Schema
	keep  int
}

func (s *stripOp) Schema() *schema.Schema { return s.out }
func (s *stripOp) Open(c *Context) error  { return s.input.Open(c) }
func (s *stripOp) Close() error           { return s.input.Close() }

func (s *stripOp) Next() (schema.Tuple, error) {
	t, err := s.input.Next()
	if err != nil {
		return nil, err
	}
	return t[:s.keep], nil
}

// limitOp emits at most n tuples after skipping offset.
type limitOp struct {
	input   Operator
	n       int // -1 = unlimited
	offset  int
	skipped int
	emitted int
}

func (l *limitOp) Schema() *schema.Schema { return l.input.Schema() }

func (l *limitOp) Open(c *Context) error {
	l.skipped, l.emitted = 0, 0
	return l.input.Open(c)
}

func (l *limitOp) Close() error { return l.input.Close() }

func (l *limitOp) Next() (schema.Tuple, error) {
	for l.skipped < l.offset {
		if _, err := l.input.Next(); err != nil {
			return nil, err
		}
		l.skipped++
	}
	if l.n >= 0 && l.emitted >= l.n {
		return nil, io.EOF
	}
	t, err := l.input.Next()
	if err != nil {
		return nil, err
	}
	l.emitted++
	return t, nil
}

// distinctOp drops duplicates over the first keyCols columns.
type distinctOp struct {
	input   Operator
	keyCols int
	seen    map[string]bool
}

func (d *distinctOp) Schema() *schema.Schema { return d.input.Schema() }

func (d *distinctOp) Open(c *Context) error {
	d.seen = map[string]bool{}
	return d.input.Open(c)
}

func (d *distinctOp) Close() error { return d.input.Close() }

func (d *distinctOp) Next() (schema.Tuple, error) {
	idx := make([]int, d.keyCols)
	for i := range idx {
		idx[i] = i
	}
	for {
		t, err := d.input.Next()
		if err != nil {
			return nil, err
		}
		k := t.Key(idx)
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return t, nil
	}
}

// drain materializes an operator's remaining stream.
func drain(op Operator) ([]schema.Tuple, error) {
	var rows []schema.Tuple
	for {
		t, err := op.Next()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, t)
	}
}
