// Package physical executes logical plans with an iterator (Open/Next/
// Close) operator model. Traditional operators (scans, filters, joins,
// aggregation, sorting) implement exact relational semantics over
// materialized tuples; the LLM-backed operators (key scan, attribute
// fetch, boolean filter) realize the paper's prompt-based physical
// operators against any llm.Client.
package physical

import (
	"context"
	"fmt"
	"io"

	"repro/internal/clean"
	"repro/internal/expr"
	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/schema"
)

// Context carries the runtime environment shared by all operators of one
// query execution.
type Context struct {
	Ctx    context.Context
	Client llm.Client // nil for DB-only plans
	// Route, when non-nil, resolves the client one prompt role's calls
	// go out on, given the role and the issuing table's pinned backend
	// ("" when unpinned). The session installs it over the runtime's
	// backend registry; operators resolve through ClientFor. Nil routes
	// every role to Client.
	Route   func(role llm.Role, tableBackend string) llm.Client
	Prompts *prompt.Builder // prompt construction
	Cleaner *clean.Cleaner  // answer normalization
	// Cache, when non-nil, is the engine's prompt cache: completions are
	// reused across operators and queries, concurrent identical prompts
	// collapse into one model call, and duplicate prompts within a batch
	// cost one completion. Operators consult it transparently through
	// Complete and CompleteBatch.
	Cache *llm.Cache
	// MaxScanIterations caps the "return more results" loop per leaf
	// (Section 4's termination threshold).
	MaxScanIterations int
	// BatchWorkers bounds the concurrency of batched prompt execution. In
	// pipelined mode the Scheduler's worker budget takes its place.
	BatchWorkers int
	// Scheduler, when non-nil, turns on the pipelined streaming executor:
	// it is this query's tenant handle on the engine-global fair-share
	// scheduler. The LLM operators submit prompts through it as upstream
	// tuples arrive — instead of draining their input and issuing one
	// blocking batch — competing for the shared per-endpoint worker
	// budget with every other in-flight query, and latency is accounted
	// per tenant with the scheduler's critical-path model rather than
	// summed per-operator waves. Nil runs the stop-and-go execution the
	// paper describes.
	Scheduler *llm.Tenant
	// PipelineBuffer bounds how many tuples a streaming LLM operator may
	// run ahead of its consumer (0 means DefaultPipelineBuffer). Smaller
	// buffers make LIMIT-driven early termination cut upstream prompt
	// issue sooner; larger ones decouple stages more.
	PipelineBuffer int
	// Metrics, when non-nil, collects per-operator actual prompt and row
	// counts, keyed by logical plan node — the "actual" side of EXPLAIN
	// ANALYZE and the feedback signal for the optimizer's statistics.
	Metrics *Metrics
	// Verifier, when non-nil, is a second model that double-checks every
	// fetched attribute value (Section 6, "Knowledge of the Unknown":
	// "verify generated query answers by another model"). Cells the
	// verifier disagrees with become NULL.
	Verifier llm.Client
	// VerifyTolerance is the relative error under which two numeric
	// answers count as agreeing (default 0.1 when Verifier is set).
	VerifyTolerance float64
}

// Complete issues one prompt through the query's client, consulting the
// prompt cache when one is configured.
func (c *Context) Complete(prompt string) (string, error) {
	return llm.CompleteCached(c.Ctx, c.Client, c.Cache, prompt)
}

// CompleteOn is Complete through an explicitly resolved client (a routed
// role's backend chain).
func (c *Context) CompleteOn(client llm.Client, prompt string) (string, error) {
	return llm.CompleteCached(c.Ctx, client, c.Cache, prompt)
}

// ClientFor resolves the transport one prompt role's calls go out on for
// a table binding, falling back to the query's primary client when no
// router is installed.
func (c *Context) ClientFor(role llm.Role, tableBackend string) llm.Client {
	if c.Route != nil {
		if cl := c.Route(role, tableBackend); cl != nil {
			return cl
		}
	}
	return c.Client
}

// CompleteBatch issues prompts through the given client (the query's main
// client or its verifier) with bounded concurrency, deduplicating and
// caching when a prompt cache is configured.
func (c *Context) CompleteBatch(client llm.Client, prompts []string) ([]string, error) {
	workers := c.BatchWorkers
	if workers <= 0 {
		workers = llm.DefaultBatchWorkers
	}
	return llm.CompleteBatchCached(c.Ctx, client, c.Cache, prompts, workers)
}

// Pipelined reports whether this query runs the streaming executor.
func (c *Context) Pipelined() bool { return c.Scheduler != nil }

// DefaultPipelineBuffer is the fallback bound on how far a streaming LLM
// operator runs ahead of its consumer.
const DefaultPipelineBuffer = 16

func (c *Context) pipeBuffer() int {
	if c.PipelineBuffer > 0 {
		return c.PipelineBuffer
	}
	return DefaultPipelineBuffer
}

// Operator is one physical operator.
type Operator interface {
	Schema() *schema.Schema
	Open(*Context) error
	Next() (schema.Tuple, error) // io.EOF at end of stream
	Close() error
}

// vtOperator is implemented by operators that report, next to each tuple,
// the virtual time at which the tuple became available on the simulated-
// latency axis — the completion time of the prompt chain that produced it.
// The pipelined LLM operators use it as the ready time of downstream
// prompts; prompt-free operators forward their input's timestamps.
type vtOperator interface {
	NextVT() (schema.Tuple, llm.VTime, error)
}

// nextVT pulls one tuple with its virtual timestamp. Operators unaware of
// virtual time report zero: their tuples are available immediately.
func nextVT(op Operator) (schema.Tuple, llm.VTime, error) {
	if s, ok := op.(vtOperator); ok {
		return s.NextVT()
	}
	t, err := op.Next()
	return t, 0, err
}

// drainVT materializes an operator's remaining stream together with the
// high-water virtual time across the consumed tuples — the availability
// time of anything derived from the whole input (a hash table, a sorted
// run, an aggregate).
func drainVT(op Operator) ([]schema.Tuple, llm.VTime, error) {
	var rows []schema.Tuple
	var vt llm.VTime
	for {
		t, tvt, err := nextVT(op)
		if err == io.EOF {
			return rows, vt, nil
		}
		if err != nil {
			return nil, 0, err
		}
		if tvt > vt {
			vt = tvt
		}
		rows = append(rows, t)
	}
}

// RowStream is one query execution consumed row by row: the iterator
// surface streaming consumers (galois-serve's NDJSON/SSE delivery) pull
// from, instead of waiting for Run to materialize the whole relation.
// Each Next returns the tuple together with its virtual availability
// time — the simulated instant the prompt chain producing the row
// completed — so "the first row arrived before the full relation" is a
// checkable property of the latency model, not a racy wall-clock
// observation. Close releases the operator tree (for pipelined plans,
// the close cascade stops upstream prompt issue), and is idempotent;
// callers must Close even after an error or io.EOF.
type RowStream struct {
	op     Operator
	closed bool
}

// OpenStream opens the operator tree for incremental consumption. On an
// Open error the tree is released before returning.
func OpenStream(ctx *Context, op Operator) (*RowStream, error) {
	if err := op.Open(ctx); err != nil {
		op.Close()
		return nil, err
	}
	return &RowStream{op: op}, nil
}

// Schema reports the stream's output columns.
func (s *RowStream) Schema() *schema.Schema { return s.op.Schema() }

// Next pulls one tuple with its virtual availability timestamp; io.EOF
// ends the stream.
func (s *RowStream) Next() (schema.Tuple, llm.VTime, error) {
	return nextVT(s.op)
}

// Close releases the operator tree. Idempotent.
func (s *RowStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.op.Close()
}

// Run drains an operator into a materialized relation — the buffered
// consumption of the same stream surface.
func Run(ctx *Context, op Operator) (*schema.Relation, error) {
	st, err := OpenStream(ctx, op)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	out := schema.NewRelation(st.Schema().Clone())
	for {
		t, _, err := st.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Append(t)
	}
}

// memScan iterates a materialized relation under the scan's qualified
// schema.
type memScan struct {
	out  *schema.Schema
	rel  *schema.Relation
	next int
}

// NewMemScan builds a scan over data with the given output schema. The
// data's column order must match the schema.
func NewMemScan(out *schema.Schema, data *schema.Relation) Operator {
	return &memScan{out: out, rel: data}
}

func (s *memScan) Schema() *schema.Schema { return s.out }
func (s *memScan) Open(*Context) error    { s.next = 0; return nil }
func (s *memScan) Close() error           { return nil }

func (s *memScan) Next() (schema.Tuple, error) {
	if s.next >= len(s.rel.Rows) {
		return nil, io.EOF
	}
	t := s.rel.Rows[s.next]
	s.next++
	return t, nil
}

// filterOp streams tuples passing the predicate.
type filterOp struct {
	input Operator
	cond  expr.Func
}

// NewFilter compiles cond against the input schema.
func NewFilter(input Operator, cond expr.Func) Operator {
	return &filterOp{input: input, cond: cond}
}

func (f *filterOp) Schema() *schema.Schema { return f.input.Schema() }
func (f *filterOp) Open(c *Context) error  { return f.input.Open(c) }
func (f *filterOp) Close() error           { return f.input.Close() }

func (f *filterOp) Next() (schema.Tuple, error) {
	t, _, err := f.NextVT()
	return t, err
}

func (f *filterOp) NextVT() (schema.Tuple, llm.VTime, error) {
	for {
		t, vt, err := nextVT(f.input)
		if err != nil {
			return nil, 0, err
		}
		ok, err := expr.EvalBool(f.cond, t)
		if err != nil {
			return nil, 0, err
		}
		if ok {
			return t, vt, nil
		}
	}
}

// projectOp evaluates one function per output column.
type projectOp struct {
	input Operator
	out   *schema.Schema
	funcs []expr.Func
}

func (p *projectOp) Schema() *schema.Schema { return p.out }
func (p *projectOp) Open(c *Context) error  { return p.input.Open(c) }
func (p *projectOp) Close() error           { return p.input.Close() }

func (p *projectOp) Next() (schema.Tuple, error) {
	t, _, err := p.NextVT()
	return t, err
}

func (p *projectOp) NextVT() (schema.Tuple, llm.VTime, error) {
	t, vt, err := nextVT(p.input)
	if err != nil {
		return nil, 0, err
	}
	out := make(schema.Tuple, len(p.funcs))
	for i, f := range p.funcs {
		v, err := f(t)
		if err != nil {
			return nil, 0, fmt.Errorf("physical: projecting column %d: %w", i, err)
		}
		out[i] = v
	}
	return out, vt, nil
}

// stripOp keeps the first k columns.
type stripOp struct {
	input Operator
	out   *schema.Schema
	keep  int
}

func (s *stripOp) Schema() *schema.Schema { return s.out }
func (s *stripOp) Open(c *Context) error  { return s.input.Open(c) }
func (s *stripOp) Close() error           { return s.input.Close() }

func (s *stripOp) Next() (schema.Tuple, error) {
	t, _, err := s.NextVT()
	return t, err
}

func (s *stripOp) NextVT() (schema.Tuple, llm.VTime, error) {
	t, vt, err := nextVT(s.input)
	if err != nil {
		return nil, 0, err
	}
	return t[:s.keep], vt, nil
}

// limitOp emits at most n tuples after skipping offset.
type limitOp struct {
	input   Operator
	n       int // -1 = unlimited
	offset  int
	skipped int
	emitted int
}

func (l *limitOp) Schema() *schema.Schema { return l.input.Schema() }

func (l *limitOp) Open(c *Context) error {
	l.skipped, l.emitted = 0, 0
	return l.input.Open(c)
}

func (l *limitOp) Close() error { return l.input.Close() }

func (l *limitOp) Next() (schema.Tuple, error) {
	t, _, err := l.NextVT()
	return t, err
}

func (l *limitOp) NextVT() (schema.Tuple, llm.VTime, error) {
	// A satisfied limit — including LIMIT 0 — ends the stream without
	// pulling (or skipping offset rows of) the input, so upstream
	// operators never run, and in pipelined mode their producers are told
	// to stop issuing prompts as soon as the tree is closed.
	if l.n >= 0 && l.emitted >= l.n {
		return nil, 0, io.EOF
	}
	for l.skipped < l.offset {
		if _, _, err := nextVT(l.input); err != nil {
			return nil, 0, err
		}
		l.skipped++
	}
	t, vt, err := nextVT(l.input)
	if err != nil {
		return nil, 0, err
	}
	l.emitted++
	return t, vt, nil
}

// distinctOp drops duplicates over the first keyCols columns.
type distinctOp struct {
	input   Operator
	keyCols int
	idx     []int
	seen    map[string]bool
}

func (d *distinctOp) Schema() *schema.Schema { return d.input.Schema() }

func (d *distinctOp) Open(c *Context) error {
	d.seen = map[string]bool{}
	d.idx = make([]int, d.keyCols)
	for i := range d.idx {
		d.idx[i] = i
	}
	return d.input.Open(c)
}

func (d *distinctOp) Close() error { return d.input.Close() }

func (d *distinctOp) Next() (schema.Tuple, error) {
	t, _, err := d.NextVT()
	return t, err
}

func (d *distinctOp) NextVT() (schema.Tuple, llm.VTime, error) {
	for {
		t, vt, err := nextVT(d.input)
		if err != nil {
			return nil, 0, err
		}
		k := t.Key(d.idx)
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return t, vt, nil
	}
}

// drain materializes an operator's remaining stream.
func drain(op Operator) ([]schema.Tuple, error) {
	var rows []schema.Tuple
	for {
		t, err := op.Next()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, t)
	}
}
