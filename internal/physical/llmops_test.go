package physical

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/clean"
	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/prompt"
	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// scriptedLLM answers prompts from a rule table, recording every prompt.
// It is safe for the concurrent calls batched operators make.
type scriptedLLM struct {
	rules []struct {
		contains string
		answer   string
	}
	calls   int32
	failOn  string
	mu      sync.Mutex
	prompts []string
}

func (s *scriptedLLM) Name() string { return "scripted" }

func (s *scriptedLLM) Complete(ctx context.Context, p string) (string, error) {
	atomic.AddInt32(&s.calls, 1)
	s.mu.Lock()
	s.prompts = append(s.prompts, p)
	s.mu.Unlock()
	if s.failOn != "" && strings.Contains(p, s.failOn) {
		return "", errors.New("scripted failure")
	}
	for _, r := range s.rules {
		if strings.Contains(p, r.contains) {
			return r.answer, nil
		}
	}
	return prompt.UnknownMarker, nil
}

func (s *scriptedLLM) on(contains, answer string) *scriptedLLM {
	s.rules = append(s.rules, struct{ contains, answer string }{contains, answer})
	return s
}

func llmCtx(client *scriptedLLM) *Context {
	b := prompt.NewBuilder()
	b.IncludePreamble = false
	return &Context{
		Ctx:               context.Background(),
		Client:            client,
		Prompts:           b,
		Cleaner:           clean.New(clean.DefaultOptions()),
		MaxScanIterations: 5,
		BatchWorkers:      2,
	}
}

func townDef() *schema.TableDef {
	return &schema.TableDef{
		Name:      "town",
		KeyColumn: "name",
		Schema: schema.New(
			schema.Column{Name: "name", Type: value.KindString},
			schema.Column{Name: "population", Type: value.KindInt},
		),
	}
}

func TestLLMKeyScanIteratesUntilDone(t *testing.T) {
	client := (&scriptedLLM{}).
		on("Do not repeat any of: Alpha; Beta", "Done").
		on("List the names of all towns", "Alpha\nBeta")
	scan := logical.NewScan(townDef(), "t", "LLM")
	op := &llmKeyScanOp{scan: scan, out: scan.Schema()}
	rel, err := Run(llmCtx(client), op)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 2 {
		t.Fatalf("keys = %d:\n%s", rel.Cardinality(), rel.String())
	}
	if client.calls != 2 {
		t.Errorf("calls = %d, want list + one more-round", client.calls)
	}
}

func TestLLMKeyScanStopsWhenNoNewKeys(t *testing.T) {
	// The model keeps repeating the same keys; the scan must terminate.
	client := (&scriptedLLM{}).on("towns", "Alpha\nBeta")
	scan := logical.NewScan(townDef(), "t", "LLM")
	op := &llmKeyScanOp{scan: scan, out: scan.Schema()}
	rel, err := Run(llmCtx(client), op)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 2 {
		t.Errorf("keys = %d", rel.Cardinality())
	}
	if client.calls > 3 {
		t.Errorf("scan must stop once no new keys arrive, made %d calls", client.calls)
	}
}

func TestLLMKeyScanIterationCap(t *testing.T) {
	// A pathological model that always invents a fresh key: the cap must
	// stop the loop.
	n := 0
	client := &scriptedLLM{}
	client.rules = append(client.rules, struct{ contains, answer string }{"", ""})
	// Override via closure-free trick: wrap with dynamic answer.
	dyn := &dynamicLLM{f: func(p string) string {
		n++
		return fmt.Sprintf("Town%d", n)
	}}
	scan := logical.NewScan(townDef(), "t", "LLM")
	op := &llmKeyScanOp{scan: scan, out: scan.Schema()}
	ctx := llmCtx(client)
	ctx.Client = dyn
	ctx.MaxScanIterations = 3
	rel, err := Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 3 {
		t.Errorf("cap=3 should yield 3 keys, got %d", rel.Cardinality())
	}
}

type dynamicLLM struct{ f func(string) string }

func (d *dynamicLLM) Name() string { return "dynamic" }
func (d *dynamicLLM) Complete(ctx context.Context, p string) (string, error) {
	return d.f(p), nil
}

func TestLLMKeyScanUnknown(t *testing.T) {
	client := (&scriptedLLM{}).on("towns", "Unknown")
	scan := logical.NewScan(townDef(), "t", "LLM")
	op := &llmKeyScanOp{scan: scan, out: scan.Schema()}
	rel, err := Run(llmCtx(client), op)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 0 {
		t.Errorf("Unknown should yield an empty relation, got %d", rel.Cardinality())
	}
}

func TestLLMFetchAttr(t *testing.T) {
	client := (&scriptedLLM{}).
		on("population of the town Alpha", "1.2 million").
		on("population of the town Beta", "Unknown")
	scan := logical.NewScan(townDef(), "t", "LLM")
	keyOp := &memScan{out: scan.Schema(), rel: keysRelation("Alpha", "Beta")}
	fa, err := logical.NewFetchAttr(scan, townDef(), "t", "population", 0)
	if err != nil {
		t.Fatal(err)
	}
	op := &llmFetchAttrOp{node: fa, input: keyOp, out: fa.Schema()}
	rel, err := Run(llmCtx(client), op)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 2 {
		t.Fatalf("rows = %d", rel.Cardinality())
	}
	if rel.Rows[0][1].AsInt() != 1200000 {
		t.Errorf("Alpha population = %v (cleaned from '1.2 million')", rel.Rows[0][1])
	}
	if !rel.Rows[1][1].IsNull() {
		t.Errorf("Unknown must become NULL, got %v", rel.Rows[1][1])
	}
}

// TestLLMFetchAttrDedup: with a prompt cache configured, fetching an
// attribute over duplicate keys issues exactly one model call per
// distinct key (K < N prompts) and still aligns answers positionally.
func TestLLMFetchAttrDedup(t *testing.T) {
	client := (&scriptedLLM{}).
		on("population of the town Alpha", "100").
		on("population of the town Beta", "200")
	scan := logical.NewScan(townDef(), "t", "LLM")
	keys := keysRelation("Alpha", "Beta", "Alpha", "Alpha", "Beta")
	keyOp := &memScan{out: scan.Schema(), rel: keys}
	fa, err := logical.NewFetchAttr(scan, townDef(), "t", "population", 0)
	if err != nil {
		t.Fatal(err)
	}
	op := &llmFetchAttrOp{node: fa, input: keyOp, out: fa.Schema()}
	ctx := llmCtx(client)
	ctx.Cache = llm.NewCache(16)
	rel, err := Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 5 {
		t.Fatalf("rows = %d, the batch must stay positionally complete", rel.Cardinality())
	}
	if client.calls != 2 {
		t.Errorf("duplicate keys issued %d prompts, want 2 distinct", client.calls)
	}
	for i, want := range []int64{100, 200, 100, 100, 200} {
		if rel.Rows[i][1].AsInt() != want {
			t.Errorf("row %d = %v, want %d", i, rel.Rows[i][1], want)
		}
	}
}

// TestLLMFetchAttrCachedAcrossQueries: a second identical fetch against
// the same cache issues zero model calls.
func TestLLMFetchAttrCachedAcrossQueries(t *testing.T) {
	client := (&scriptedLLM{}).
		on("population of the town Alpha", "100").
		on("population of the town Beta", "200")
	cache := llm.NewCache(16)
	run := func() {
		scan := logical.NewScan(townDef(), "t", "LLM")
		keyOp := &memScan{out: scan.Schema(), rel: keysRelation("Alpha", "Beta")}
		fa, err := logical.NewFetchAttr(scan, townDef(), "t", "population", 0)
		if err != nil {
			t.Fatal(err)
		}
		op := &llmFetchAttrOp{node: fa, input: keyOp, out: fa.Schema()}
		ctx := llmCtx(client)
		ctx.Cache = cache
		if _, err := Run(ctx, op); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if client.calls != 2 {
		t.Fatalf("first run issued %d calls", client.calls)
	}
	run()
	if client.calls != 2 {
		t.Errorf("second run re-issued prompts: %d calls total", client.calls)
	}
}

func keysRelation(keys ...string) *schema.Relation {
	rel := schema.NewRelation(schema.New(schema.Column{Table: "t", Name: "name", Type: value.KindString}))
	for _, k := range keys {
		rel.Append(schema.Tuple{value.Text(k)})
	}
	return rel
}

func TestLLMFilter(t *testing.T) {
	client := (&scriptedLLM{}).
		on("Has town Alpha population more than 1000000", "yes").
		on("Has town Beta population more than 1000000", "No.")
	scan := logical.NewScan(townDef(), "t", "LLM")
	keyOp := &memScan{out: scan.Schema(), rel: keysRelation("Alpha", "Beta")}
	cond := &ast.Binary{
		Op:    ">",
		Left:  &ast.ColumnRef{Table: "t", Name: "population"},
		Right: &ast.Literal{Val: value.Int(1000000)},
	}
	filter := &logical.LLMFilter{Input: scan, Table: townDef(), Binding: "t", Cond: cond, KeyCol: 0}
	op := &llmFilterOp{node: filter, input: keyOp}
	rel, err := Run(llmCtx(client), op)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 1 || rel.Rows[0][0].AsString() != "Alpha" {
		t.Errorf("filter kept %v", rel.Rows)
	}
}

func TestLLMErrorPropagates(t *testing.T) {
	client := (&scriptedLLM{failOn: "towns"})
	scan := logical.NewScan(townDef(), "t", "LLM")
	op := &llmKeyScanOp{scan: scan, out: scan.Schema()}
	if _, err := Run(llmCtx(client), op); err == nil {
		t.Error("LLM errors must propagate")
	}
}

func TestLLMOpsRequireClient(t *testing.T) {
	scan := logical.NewScan(townDef(), "t", "LLM")
	op := &llmKeyScanOp{scan: scan, out: scan.Schema()}
	ctx := llmCtx(&scriptedLLM{})
	ctx.Client = nil
	if _, err := Run(ctx, op); err == nil {
		t.Error("LLM scan without a client must fail")
	}
}

func TestIsYes(t *testing.T) {
	for s, want := range map[string]bool{
		"yes": true, "Yes.": true, "YES": true, "true": true,
		"no": false, "No.": false, "maybe": false, "": false,
		"yes, it does": true,
	} {
		if got := isYes(s); got != want {
			t.Errorf("isYes(%q) = %v", s, got)
		}
	}
}

func TestFetchVerification(t *testing.T) {
	client := (&scriptedLLM{}).
		on("population of the town Alpha", "100").
		on("population of the town Beta", "200")
	// The verifier agrees on Alpha (within 10%) and contradicts Beta.
	verifier := (&scriptedLLM{}).
		on("population of the town Alpha", "105").
		on("population of the town Beta", "900")
	scan := logical.NewScan(townDef(), "t", "LLM")
	keyOp := &memScan{out: scan.Schema(), rel: keysRelation("Alpha", "Beta")}
	fa, err := logical.NewFetchAttr(scan, townDef(), "t", "population", 0)
	if err != nil {
		t.Fatal(err)
	}
	op := &llmFetchAttrOp{node: fa, input: keyOp, out: fa.Schema()}
	ctx := llmCtx(client)
	ctx.Verifier = verifier
	rel, err := Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][1].AsInt() != 100 {
		t.Errorf("agreeing value must survive: %v", rel.Rows[0][1])
	}
	if !rel.Rows[1][1].IsNull() {
		t.Errorf("contradicted value must become NULL: %v", rel.Rows[1][1])
	}
}

func TestValuesAgree(t *testing.T) {
	cases := []struct {
		a, b value.Value
		tol  float64
		want bool
	}{
		{value.Int(100), value.Int(105), 0.1, true},
		{value.Int(100), value.Int(120), 0.1, false},
		{value.Text("Rome"), value.Text(" rome "), 0.1, true},
		{value.Text("Rome"), value.Text("Paris"), 0.1, false},
		{value.Int(0), value.Int(0), 0.1, true},
		{value.Int(0), value.Int(1), 0.1, false},
		{value.Null(), value.Int(1), 0.1, false},
	}
	for _, c := range cases {
		if got := valuesAgree(c.a, c.b, c.tol); got != c.want {
			t.Errorf("valuesAgree(%v, %v) = %v", c.a, c.b, got)
		}
	}
}
