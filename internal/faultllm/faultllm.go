// Package faultllm is a deterministic chaos injector for the LLM
// transport: it wraps any llm.Client and injects transient errors,
// per-prompt timeouts, malformed-completion bursts, slow responses and
// whole-endpoint outages according to a seeded fault profile.
//
// Every injected fault is a pure FNV hash of (seed, endpoint, prompt,
// attempt) — the same decision procedure simllm uses for model noise —
// so a chaos run is bit-reproducible regardless of goroutine
// interleaving, worker counts, or which of two concurrent identical
// prompts wins a singleflight. The attempt number rides in on the
// context (llm.WithAttempt, set by the resilience layer), which is what
// lets a profile express "this prompt fails twice, then heals": with
// FailAttempts bounded below the retry limit, every prompt eventually
// succeeds and the differential suite can demand bit-identical results.
package faultllm

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/llm"
)

// MalformedMarker brands every injected malformed completion so a
// validator (and a test) can recognize one unambiguously.
const MalformedMarker = "!!FAULTLLM-MALFORMED!!"

// Profile is a seeded fault profile. Rates are probabilities in [0,1]
// evaluated independently per (prompt, attempt); the zero Profile
// injects nothing.
type Profile struct {
	// Seed keys every fault decision; two injectors with the same seed
	// and profile inject identical faults.
	Seed int64 `json:"seed"`
	// TransientRate is the probability an eligible attempt fails with a
	// retryable backend error (a simulated 500/dropped connection).
	TransientRate float64 `json:"transient_rate,omitempty"`
	// TimeoutRate is the probability an eligible attempt fails as an
	// expired per-prompt deadline (llm.ClassDeadline, retryable).
	TimeoutRate float64 `json:"timeout_rate,omitempty"`
	// MalformedRate is the probability an eligible attempt "succeeds"
	// with a recognizably garbage completion — the cache-poisoning
	// attack the resilience layer's validator must repel.
	MalformedRate float64 `json:"malformed_rate,omitempty"`
	// SlowRate/SlowDelay stretch that fraction of calls by a real sleep
	// (honoring ctx) to exercise timeout and pipelining behavior.
	SlowRate  float64       `json:"slow_rate,omitempty"`
	SlowDelay time.Duration `json:"slow_delay,omitempty"`
	// FailAttempts bounds how many times one prompt can be faulted: an
	// attempt faults only while attempt < FailAttempts. 0 selects the
	// default of 2, so any retry budget of ≥ 2 guarantees eventual
	// success; negative means unbounded (every attempt eligible).
	FailAttempts int `json:"fail_attempts,omitempty"`
}

// normalized fills profile defaults.
func (p Profile) normalized() Profile {
	if p.FailAttempts == 0 {
		p.FailAttempts = 2
	}
	return p
}

// Counters snapshots what the injector has done.
type Counters struct {
	Calls     int64 `json:"calls"`
	Transient int64 `json:"transient"`
	Timeouts  int64 `json:"timeouts"`
	Malformed int64 `json:"malformed"`
	Slowed    int64 `json:"slowed"`
	Outage    int64 `json:"outage"`
}

// Injector wraps a client with seeded fault injection. Safe for
// concurrent use; the profile is immutable after construction and the
// only mutable state is the outage switch and the counters.
type Injector struct {
	inner llm.Client
	p     Profile

	outage atomic.Bool

	calls     atomic.Int64
	transient atomic.Int64
	timeouts  atomic.Int64
	malformed atomic.Int64
	slowed    atomic.Int64
	outaged   atomic.Int64
}

// Wrap builds an injector over inner with the given profile.
func Wrap(inner llm.Client, p Profile) *Injector {
	return &Injector{inner: inner, p: p.normalized()}
}

// Name implements llm.Client; the injector is transparent to cache keys
// and endpoint accounting.
func (in *Injector) Name() string { return in.inner.Name() }

// Inner returns the wrapped client.
func (in *Injector) Inner() llm.Client { return in.inner }

// Profile returns the (normalized) fault profile.
func (in *Injector) Profile() Profile { return in.p }

// SetOutage switches a total endpoint outage on or off: while on, every
// call fails with a transient error without reaching the backend —
// the scenario that must open the circuit breaker.
func (in *Injector) SetOutage(on bool) { in.outage.Store(on) }

// Counters snapshots the injector's fault accounting.
func (in *Injector) Counters() Counters {
	return Counters{
		Calls:     in.calls.Load(),
		Transient: in.transient.Load(),
		Timeouts:  in.timeouts.Load(),
		Malformed: in.malformed.Load(),
		Slowed:    in.slowed.Load(),
		Outage:    in.outaged.Load(),
	}
}

// Validator returns a completion validator that rejects the injector's
// malformed completions — handed to llm.ResilientConfig.Validate so a
// malformed burst is retried instead of cached.
func Validator() func(prompt, completion string) error {
	return func(prompt, completion string) error {
		if strings.Contains(completion, MalformedMarker) {
			return errors.New("faultllm: malformed completion")
		}
		return nil
	}
}

// Complete implements llm.Client with fault injection in front of the
// wrapped backend.
func (in *Injector) Complete(ctx context.Context, prompt string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	in.calls.Add(1)

	if in.outage.Load() {
		in.outaged.Add(1)
		return "", llm.Transient(errors.New("faultllm: endpoint outage"))
	}

	attempt := llm.AttemptFromContext(ctx)

	// Slowness is independent of failure and keyed to the first attempt's
	// hash so a retried prompt doesn't re-roll its latency class.
	if in.p.SlowRate > 0 && in.h01("slow", prompt, 0) < in.p.SlowRate {
		in.slowed.Add(1)
		if err := sleep(ctx, in.p.SlowDelay); err != nil {
			return "", err
		}
	}

	if in.p.FailAttempts < 0 || attempt < in.p.FailAttempts {
		r := in.h01("fault", prompt, attempt)
		switch {
		case r < in.p.TransientRate:
			in.transient.Add(1)
			return "", llm.Transient(fmt.Errorf("faultllm: injected transient (attempt %d)", attempt))
		case r < in.p.TransientRate+in.p.TimeoutRate:
			in.timeouts.Add(1)
			return "", llm.DeadlineError(fmt.Errorf("faultllm: injected timeout (attempt %d)", attempt))
		case r < in.p.TransientRate+in.p.TimeoutRate+in.p.MalformedRate:
			in.malformed.Add(1)
			return MalformedMarker + " " + prompt, nil
		}
	}

	return in.inner.Complete(ctx, prompt)
}

// h01 maps an FNV-1a hash of (seed, endpoint, kind, prompt, attempt)
// to [0,1) — simllm's decision procedure, reused for faults.
func (in *Injector) h01(kind, prompt string, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d|", in.p.Seed, in.inner.Name(), kind, attempt)
	h.Write([]byte(prompt))
	return float64(h.Sum64()%1e9) / 1e9
}

// sleep waits d honoring ctx.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
