package faultllm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/llm"
)

type echo struct{}

func (echo) Name() string { return "echo" }
func (echo) Complete(ctx context.Context, prompt string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return "echo: " + prompt, nil
}

// TestInjectorDeterministic: two injectors with the same seed inject
// identical faults for identical (prompt, attempt) pairs, and a
// different seed injects a different pattern.
func TestInjectorDeterministic(t *testing.T) {
	p := Profile{Seed: 7, TransientRate: 0.3, TimeoutRate: 0.1, MalformedRate: 0.1}
	a, b := Wrap(echo{}, p), Wrap(echo{}, p)
	c := Wrap(echo{}, Profile{Seed: 8, TransientRate: 0.3, TimeoutRate: 0.1, MalformedRate: 0.1})

	outcome := func(in *Injector, prompt string, attempt int) string {
		ctx := llm.WithAttempt(context.Background(), attempt)
		out, err := in.Complete(ctx, prompt)
		if err != nil {
			return "err:" + llm.Classify(err).String()
		}
		return out
	}

	var differs bool
	for i := 0; i < 200; i++ {
		prompt := fmt.Sprintf("prompt %d", i)
		for attempt := 0; attempt < 2; attempt++ {
			oa, ob := outcome(a, prompt, attempt), outcome(b, prompt, attempt)
			if oa != ob {
				t.Fatalf("same seed diverged on (%q, %d): %q vs %q", prompt, attempt, oa, ob)
			}
			if oa != outcome(c, prompt, attempt) {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical fault patterns — hashing broken")
	}
	if a.Counters() != b.Counters() {
		t.Fatalf("same-seed counters diverged: %+v vs %+v", a.Counters(), b.Counters())
	}
	if a.Counters().Transient == 0 || a.Counters().Timeouts == 0 || a.Counters().Malformed == 0 {
		t.Fatalf("profile injected nothing: %+v", a.Counters())
	}
}

// TestInjectorFailAttemptsBound: with the default bound, attempts past
// FailAttempts are never faulted — the eventual-success guarantee the
// differential suite builds on.
func TestInjectorFailAttemptsBound(t *testing.T) {
	in := Wrap(echo{}, Profile{Seed: 1, TransientRate: 1.0})
	for i := 0; i < 50; i++ {
		prompt := fmt.Sprintf("p%d", i)
		for attempt := 0; attempt < 2; attempt++ {
			if _, err := in.Complete(llm.WithAttempt(context.Background(), attempt), prompt); err == nil {
				t.Fatalf("attempt %d of %q: want injected fault", attempt, prompt)
			}
		}
		out, err := in.Complete(llm.WithAttempt(context.Background(), 2), prompt)
		if err != nil || out != "echo: "+prompt {
			t.Fatalf("attempt 2 of %q: out=%q err=%v, want clean pass-through", prompt, out, err)
		}
	}
}

// TestInjectorThroughResilient: the injector under a ResilientClient —
// the deployment shape of the chaos harness — heals every prompt within
// the retry budget, the validator repels malformed completions, and the
// outputs are bit-identical to a fault-free run.
func TestInjectorThroughResilient(t *testing.T) {
	in := Wrap(echo{}, Profile{Seed: 42, TransientRate: 0.3, TimeoutRate: 0.1, MalformedRate: 0.2})
	rc := llm.NewResilient(in, llm.ResilientConfig{
		MaxRetries:         3,
		BreakerThreshold:   -1,
		RetryBudgetReserve: 1000,
		Sleep:              func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		Validate:           Validator(),
	})
	for i := 0; i < 200; i++ {
		prompt := fmt.Sprintf("prompt %d", i)
		out, err := rc.Complete(context.Background(), prompt)
		if err != nil {
			t.Fatalf("prompt %d failed through resilience: %v", i, err)
		}
		if out != "echo: "+prompt {
			t.Fatalf("prompt %d: out=%q — a malformed completion escaped", i, out)
		}
	}
	c := in.Counters()
	if c.Transient == 0 || c.Timeouts == 0 || c.Malformed == 0 {
		t.Fatalf("profile injected nothing through the stack: %+v", c)
	}
	rcc := rc.Counters()
	if rcc.Retries == 0 || rcc.Faults == 0 {
		t.Fatalf("resilience saw no faults: %+v", rcc)
	}
}

func TestInjectorOutageAndRecovery(t *testing.T) {
	in := Wrap(echo{}, Profile{Seed: 3})
	in.SetOutage(true)
	_, err := in.Complete(context.Background(), "p")
	if err == nil || llm.Classify(err) != llm.ClassTransient {
		t.Fatalf("outage err = %v, want transient", err)
	}
	in.SetOutage(false)
	out, err := in.Complete(context.Background(), "p")
	if err != nil || out != "echo: p" {
		t.Fatalf("after recovery: out=%q err=%v", out, err)
	}
	if got := in.Counters().Outage; got != 1 {
		t.Fatalf("outage counter = %d, want 1", got)
	}
}

func TestValidatorRejectsMarker(t *testing.T) {
	v := Validator()
	if err := v("p", MalformedMarker+" junk"); err == nil {
		t.Fatal("validator accepted a marked completion")
	}
	if err := v("p", "clean completion"); err != nil {
		t.Fatalf("validator rejected a clean completion: %v", err)
	}
}

// TestInjectorCancelPassthrough: a cancelled context short-circuits
// before any fault decision and surfaces as the caller's own error.
func TestInjectorCancelPassthrough(t *testing.T) {
	in := Wrap(echo{}, Profile{Seed: 1, TransientRate: 1.0})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := in.Complete(ctx, "p")
	if !errors.Is(err, context.Canceled) || !llm.IsCancellation(err) {
		t.Fatalf("err = %v, want caller cancellation", err)
	}
	if got := in.Counters().Calls; got != 0 {
		t.Fatalf("cancelled call counted: %d", got)
	}
}

// TestInjectorMalformedShape: malformed completions carry the marker so
// they can never be mistaken for real output.
func TestInjectorMalformedShape(t *testing.T) {
	in := Wrap(echo{}, Profile{Seed: 5, MalformedRate: 1.0})
	out, err := in.Complete(context.Background(), "p")
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if !strings.Contains(out, MalformedMarker) {
		t.Fatalf("malformed completion missing marker: %q", out)
	}
}
