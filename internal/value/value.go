// Package value implements the typed scalar values that flow through the
// Galois query engine. A Value is a small immutable tagged union covering
// the SQL types the engine supports (NULL, INTEGER, FLOAT, TEXT, BOOLEAN,
// DATE). Values coming back from an LLM are strings first; this package
// owns the parsing and coercion rules that turn those strings into typed
// cells, and the comparison semantics used by filters, joins and sorts.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind maps a SQL type name to a Kind. It accepts the common aliases
// found in CREATE TABLE statements.
func ParseKind(name string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return KindFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return KindString, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	case "DATE", "DATETIME", "TIMESTAMP":
		return KindDate, nil
	default:
		return KindNull, fmt.Errorf("value: unknown type name %q", name)
	}
}

// Value is an immutable typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64 // KindInt; KindBool (0/1); KindDate (days since 1970-01-01)
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an INTEGER value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a FLOAT value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a TEXT value. (Named with a trailing underscore to avoid
// clashing with the fmt.Stringer method.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Text returns a TEXT value; alias of String_ that reads better at call sites.
func Text(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a BOOLEAN value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// epoch is the zero day for DATE values.
var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// Date returns a DATE value for the given calendar day.
func Date(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{kind: KindDate, i: int64(t.Sub(epoch).Hours() / 24)}
}

// DateFromTime returns a DATE value for the day containing t (UTC).
func DateFromTime(t time.Time) Value {
	t = t.UTC()
	return Date(t.Year(), t.Month(), t.Day())
}

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the int64 payload. It is valid only for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float64 payload. It is valid only for KindFloat.
func (v Value) AsFloat() float64 { return v.f }

// AsString returns the string payload. It is valid only for KindString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload. It is valid only for KindBool.
func (v Value) AsBool() bool { return v.i != 0 }

// AsTime returns the DATE payload as a UTC midnight time.
// It is valid only for KindDate.
func (v Value) AsTime() time.Time {
	return epoch.Add(time.Duration(v.i) * 24 * time.Hour)
}

// Numeric reports the value as a float64 if it is numeric (INTEGER, FLOAT,
// BOOLEAN or DATE, the last as days since epoch); ok is false otherwise.
func (v Value) Numeric() (f float64, ok bool) {
	switch v.kind {
	case KindInt, KindBool, KindDate:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// String renders the value the way the engine prints result cells.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return v.AsTime().Format("2006-01-02")
	default:
		return fmt.Sprintf("<bad value kind %d>", v.kind)
	}
}

// SQLLiteral renders the value as a SQL literal (strings quoted).
func (v Value) SQLLiteral() string {
	switch v.kind {
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindDate:
		return "'" + v.String() + "'"
	default:
		return v.String()
	}
}

// Key returns a string usable as a hash-map key such that two values that
// compare Equal produce the same key. Numeric values of different kinds
// that represent the same number share a key.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00null"
	case KindString:
		return "s:" + v.s
	case KindBool:
		if v.i != 0 {
			return "b:1"
		}
		return "b:0"
	case KindDate:
		return "d:" + strconv.FormatInt(v.i, 10)
	case KindInt:
		return "n:" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case KindFloat:
		return "n:" + strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return "?"
	}
}

// Equal reports whether a and b are equal under SQL value semantics with
// numeric coercion. NULL equals nothing, including NULL.
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Compare orders a and b, returning -1, 0 or +1. Numeric kinds are compared
// after coercion to float64; strings compare lexicographically
// (case-sensitive); booleans false < true; dates chronologically.
// Comparing NULL or incompatible kinds yields an error.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("value: cannot compare NULL")
	}
	an, aNum := a.Numeric()
	bn, bNum := b.Numeric()
	switch {
	case aNum && bNum:
		switch {
		case an < bn:
			return -1, nil
		case an > bn:
			return 1, nil
		default:
			return 0, nil
		}
	case a.kind == KindString && b.kind == KindString:
		return strings.Compare(a.s, b.s), nil
	case a.kind == KindString || b.kind == KindString:
		// One side is text, the other numeric: try to parse the text side
		// as a number; if that fails, fall back to string comparison.
		if aNum {
			if f, err := strconv.ParseFloat(strings.TrimSpace(b.s), 64); err == nil {
				return cmpFloat(an, f), nil
			}
			return strings.Compare(a.String(), b.s), nil
		}
		if f, err := strconv.ParseFloat(strings.TrimSpace(a.s), 64); err == nil {
			return cmpFloat(f, bn), nil
		}
		return strings.Compare(a.s, b.String()), nil
	default:
		return 0, fmt.Errorf("value: cannot compare %s with %s", a.kind, b.kind)
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Arithmetic errors.
var errDivZero = fmt.Errorf("value: division by zero")

// Add returns a+b under numeric coercion. If either side is NULL the
// result is NULL. String operands concatenate.
func Add(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if a.kind == KindString && b.kind == KindString {
		return Text(a.s + b.s), nil
	}
	return numericOp(a, b, "+")
}

// Sub returns a-b under numeric coercion; NULL-propagating.
func Sub(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	return numericOp(a, b, "-")
}

// Mul returns a*b under numeric coercion; NULL-propagating.
func Mul(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	return numericOp(a, b, "*")
}

// Div returns a/b under numeric coercion; NULL-propagating. Integer inputs
// still produce a float result, matching the engine's AVG-friendly
// semantics.
func Div(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	return numericOp(a, b, "/")
}

func numericOp(a, b Value, op string) (Value, error) {
	an, aok := a.Numeric()
	bn, bok := b.Numeric()
	if !aok || !bok {
		return Null(), fmt.Errorf("value: %s is not valid between %s and %s", op, a.kind, b.kind)
	}
	bothInt := a.kind == KindInt && b.kind == KindInt
	var r float64
	switch op {
	case "+":
		r = an + bn
	case "-":
		r = an - bn
	case "*":
		r = an * bn
	case "/":
		if bn == 0 {
			return Null(), errDivZero
		}
		return Float(an / bn), nil
	}
	if bothInt && r == math.Trunc(r) && !math.IsInf(r, 0) {
		return Int(int64(r)), nil
	}
	return Float(r), nil
}

// Coerce converts v to the requested kind, parsing strings when necessary.
// NULL coerces to NULL of any kind. Lossy float→int conversion is allowed
// only when the float has no fractional part.
func Coerce(v Value, to Kind) (Value, error) {
	if v.IsNull() || v.kind == to {
		return v, nil
	}
	switch to {
	case KindInt:
		switch v.kind {
		case KindFloat:
			if v.f != math.Trunc(v.f) {
				return Null(), fmt.Errorf("value: cannot coerce %g to INTEGER", v.f)
			}
			return Int(int64(v.f)), nil
		case KindBool:
			return Int(v.i), nil
		case KindString:
			return ParseAs(KindInt, v.s)
		}
	case KindFloat:
		switch v.kind {
		case KindInt, KindBool:
			return Float(float64(v.i)), nil
		case KindString:
			return ParseAs(KindFloat, v.s)
		}
	case KindString:
		return Text(v.String()), nil
	case KindBool:
		switch v.kind {
		case KindInt:
			return Bool(v.i != 0), nil
		case KindFloat:
			return Bool(v.f != 0), nil
		case KindString:
			return ParseAs(KindBool, v.s)
		}
	case KindDate:
		if v.kind == KindString {
			return ParseAs(KindDate, v.s)
		}
	}
	return Null(), fmt.Errorf("value: cannot coerce %s to %s", v.kind, to)
}

// dateLayouts lists the date formats ParseAs accepts, most specific first.
var dateLayouts = []string{
	"2006-01-02",
	"2006/01/02",
	"01/02/2006",
	"January 2, 2006",
	"January 2 2006",
	"Jan 2, 2006",
	"Jan 2 2006",
	"2 January 2006",
	"2006",
}

// ParseAs parses s as a value of the requested kind. Strings are trimmed
// first. Empty strings parse to NULL.
func ParseAs(kind Kind, s string) (Value, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "null") || strings.EqualFold(s, "unknown") {
		return Null(), nil
	}
	switch kind {
	case KindString:
		return Text(s), nil
	case KindInt:
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return Int(i), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil && f == math.Trunc(f) {
			return Int(int64(f)), nil
		}
		return Null(), fmt.Errorf("value: %q is not an INTEGER", s)
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("value: %q is not a FLOAT", s)
		}
		return Float(f), nil
	case KindBool:
		switch strings.ToLower(s) {
		case "true", "t", "yes", "y", "1":
			return Bool(true), nil
		case "false", "f", "no", "n", "0":
			return Bool(false), nil
		}
		return Null(), fmt.Errorf("value: %q is not a BOOLEAN", s)
	case KindDate:
		for _, layout := range dateLayouts {
			if t, err := time.Parse(layout, s); err == nil {
				return DateFromTime(t), nil
			}
		}
		return Null(), fmt.Errorf("value: %q is not a DATE", s)
	case KindNull:
		return Null(), nil
	default:
		return Null(), fmt.Errorf("value: cannot parse as %s", kind)
	}
}

// Truthy reports whether v counts as true in a WHERE clause: non-NULL,
// non-zero, non-empty, or boolean true.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindNull:
		return false
	case KindBool, KindInt, KindDate:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	default:
		return false
	}
}
