package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "FLOAT",
		KindString: "TEXT", KindBool: "BOOLEAN", KindDate: "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	good := map[string]Kind{
		"INT": KindInt, "integer": KindInt, "BIGINT": KindInt,
		"FLOAT": KindFloat, "real": KindFloat, "DECIMAL": KindFloat,
		"TEXT": KindString, "VarChar": KindString,
		"BOOL": KindBool, "boolean": KindBool,
		"DATE": KindDate, "timestamp": KindDate,
	}
	for name, want := range good {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseKind("BLOB"); err == nil {
		t.Error("ParseKind(BLOB) should fail")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("Int(42) = %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float(2.5) = %v", v)
	}
	if v := Text("hi"); v.Kind() != KindString || v.AsString() != "hi" {
		t.Errorf("Text = %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Errorf("Bool(true) = %v", v)
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value must be NULL")
	}
}

func TestDate(t *testing.T) {
	d := Date(1961, time.May, 8)
	if d.Kind() != KindDate {
		t.Fatalf("Date kind = %v", d.Kind())
	}
	if got := d.String(); got != "1961-05-08" {
		t.Errorf("Date.String() = %q", got)
	}
	tm := d.AsTime()
	if tm.Year() != 1961 || tm.Month() != time.May || tm.Day() != 8 {
		t.Errorf("AsTime = %v", tm)
	}
	if d2 := DateFromTime(time.Date(1961, 5, 8, 13, 30, 0, 0, time.UTC)); !Equal(d, d2) {
		t.Errorf("DateFromTime ignores time-of-day: %v vs %v", d, d2)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{Text("abc"), "abc"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Date(2019, 1, 2), "2019-01-02"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := Text("O'Brien").SQLLiteral(); got != "'O''Brien'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := Int(5).SQLLiteral(); got != "5" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := Date(2020, 3, 4).SQLLiteral(); got != "'2020-03-04'" {
		t.Errorf("SQLLiteral = %q", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Text("a"), Text("b"), -1},
		{Text("b"), Text("b"), 0},
		{Bool(false), Bool(true), -1},
		{Date(2020, 1, 1), Date(2021, 1, 1), -1},
		{Text("10"), Int(9), 1},  // numeric string coerces
		{Int(9), Text("10"), -1}, // mirrored
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("Compare(%v, %v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := Compare(Null(), Int(1)); err == nil {
		t.Error("Compare with NULL should error")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(2), Float(2)) {
		t.Error("2 == 2.0 under coercion")
	}
	if Equal(Null(), Null()) {
		t.Error("NULL never equals NULL")
	}
	if Equal(Text("a"), Text("b")) {
		t.Error("a != b")
	}
}

func TestKeyAgreesWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(2), Float(2)},
		{Int(-1), Float(-1)},
		{Bool(true), Bool(true)},
	}
	for _, p := range pairs {
		if p[0].Key() != p[1].Key() {
			t.Errorf("equal values %v and %v have different keys %q %q", p[0], p[1], p[0].Key(), p[1].Key())
		}
	}
	if Int(1).Key() == Text("1").Key() {
		t.Error("int 1 and text \"1\" must not share a key")
	}
}

func TestArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if !Equal(got, want) && !(got.IsNull() && want.IsNull()) {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	v, err := Add(Int(2), Int(3))
	check(v, err, Int(5))
	if v.Kind() != KindInt {
		t.Errorf("int+int should stay INTEGER, got %v", v.Kind())
	}
	v, err = Add(Text("ab"), Text("cd"))
	check(v, err, Text("abcd"))
	v, err = Sub(Int(2), Float(0.5))
	check(v, err, Float(1.5))
	v, err = Mul(Int(4), Int(5))
	check(v, err, Int(20))
	v, err = Div(Int(5), Int(2))
	check(v, err, Float(2.5))
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("division by zero should error")
	}
	// NULL propagation.
	v, err = Add(Null(), Int(1))
	check(v, err, Null())
	v, err = Div(Null(), Int(0)) // NULL wins before the zero check
	check(v, err, Null())
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		in   Value
		to   Kind
		want Value
		ok   bool
	}{
		{Int(5), KindFloat, Float(5), true},
		{Float(5.0), KindInt, Int(5), true},
		{Float(5.5), KindInt, Null(), false},
		{Text("42"), KindInt, Int(42), true},
		{Text("2.5"), KindFloat, Float(2.5), true},
		{Text("yes"), KindBool, Bool(true), true},
		{Int(7), KindString, Text("7"), true},
		{Text("2020-01-02"), KindDate, Date(2020, 1, 2), true},
		{Null(), KindInt, Null(), true},
	}
	for _, c := range cases {
		got, err := Coerce(c.in, c.to)
		if c.ok && err != nil {
			t.Errorf("Coerce(%v, %v): %v", c.in, c.to, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("Coerce(%v, %v) should fail", c.in, c.to)
			}
			continue
		}
		if !Equal(got, c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("Coerce(%v, %v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
}

func TestParseAs(t *testing.T) {
	cases := []struct {
		kind Kind
		in   string
		want Value
		ok   bool
	}{
		{KindInt, "42", Int(42), true},
		{KindInt, " 42 ", Int(42), true},
		{KindInt, "42.0", Int(42), true},
		{KindInt, "4.2", Null(), false},
		{KindFloat, "3.14", Float(3.14), true},
		{KindBool, "yes", Bool(true), true},
		{KindBool, "N", Bool(false), true},
		{KindDate, "1961-05-08", Date(1961, 5, 8), true},
		{KindDate, "May 8, 1961", Date(1961, 5, 8), true},
		{KindDate, "8 May 1961", Date(1961, 5, 8), true},
		{KindDate, "not a date", Null(), false},
		{KindString, "  padded  ", Text("padded"), true},
		{KindInt, "", Null(), true},        // empty → NULL
		{KindInt, "Unknown", Null(), true}, // refusal → NULL
	}
	for _, c := range cases {
		got, err := ParseAs(c.kind, c.in)
		if c.ok && err != nil {
			t.Errorf("ParseAs(%v, %q): %v", c.kind, c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseAs(%v, %q) should fail", c.kind, c.in)
			}
			continue
		}
		if !Equal(got, c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("ParseAs(%v, %q) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{Int(1), Int(-1), Float(0.1), Text("x"), Bool(true), Date(2020, 1, 2)}
	falsy := []Value{Null(), Int(0), Float(0), Text(""), Bool(false)}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should be falsy", v)
		}
	}
}

// Property: Compare is antisymmetric over ints and floats.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Int(int64(a)), Float(float64(b))
		ab, err1 := Compare(x, y)
		ba, err2 := Compare(y, x)
		return err1 == nil && err2 == nil && ab == -ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add over ints is commutative and matches int64 addition when
// no overflow occurs.
func TestAddCommutative(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Int(int64(a)), Int(int64(b))
		ab, err1 := Add(x, y)
		ba, err2 := Add(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return Equal(ab, ba) && ab.AsInt() == int64(a)+int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String then ParseAs round-trips ints and dates.
func TestRoundTrip(t *testing.T) {
	f := func(a int32) bool {
		v := Int(int64(a))
		back, err := ParseAs(KindInt, v.String())
		return err == nil && Equal(v, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(days uint16) bool {
		d := DateFromTime(epoch.Add(time.Duration(days) * 24 * time.Hour))
		back, err := ParseAs(KindDate, d.String())
		return err == nil && Equal(d, back)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestNumeric(t *testing.T) {
	if f, ok := Int(3).Numeric(); !ok || f != 3 {
		t.Error("Int Numeric")
	}
	if f, ok := Float(2.5).Numeric(); !ok || f != 2.5 {
		t.Error("Float Numeric")
	}
	if _, ok := Text("x").Numeric(); ok {
		t.Error("Text is not numeric")
	}
	if f, ok := Bool(true).Numeric(); !ok || f != 1 {
		t.Error("Bool numeric is 0/1")
	}
	if f, ok := Date(1970, 1, 2).Numeric(); !ok || f != 1 {
		t.Error("Date numeric is days since epoch")
	}
}

func TestModEdge(t *testing.T) {
	// Exercised through Div path indirectly; ensure Inf never leaks from
	// numericOp int promotion.
	v, err := Mul(Float(math.MaxFloat64), Float(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != KindFloat {
		t.Errorf("overflowing product stays FLOAT, got %v", v.Kind())
	}
}
