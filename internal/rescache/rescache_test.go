package rescache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/schema"
	"repro/internal/value"
)

// rel builds a one-column relation holding the given strings.
func rel(cells ...string) *schema.Relation {
	r := schema.NewRelation(schema.New(schema.Column{Name: "v", Type: value.KindString}))
	for _, c := range cells {
		r.Append(schema.Tuple{value.Text(c)})
	}
	return r
}

func entry(cells ...string) *Entry { return &Entry{Rel: rel(cells...), Plan: "plan"} }

func fetch(t *testing.T, c *Cache, key Key, e *Entry) (*Entry, bool) {
	t.Helper()
	got, cached, err := c.Fetch(context.Background(), key, func() (*Entry, error) { return e, nil })
	if err != nil {
		t.Fatal(err)
	}
	return got, cached
}

func TestFetchPopulatesAndHits(t *testing.T) {
	c := New(4)
	key := Key{Fingerprint: "q1", Epoch: 0}

	got, cached := fetch(t, c, key, entry("a", "b"))
	if cached {
		t.Error("first fetch reported cached")
	}
	if got.Rel.Cardinality() != 2 {
		t.Errorf("leader got %d rows", got.Rel.Cardinality())
	}

	got2, cached2 := fetch(t, c, key, entry("MUST NOT RUN"))
	if !cached2 {
		t.Error("second fetch missed")
	}
	if got2.Rel.String() != got.Rel.String() {
		t.Errorf("hit diverged: %q vs %q", got2.Rel.String(), got.Rel.String())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1/1/1", st)
	}
}

// TestHitsAreIsolatedCopies: mutating a relation handed out by the cache
// (or the one the populating caller kept) must not corrupt later hits.
func TestHitsAreIsolatedCopies(t *testing.T) {
	c := New(4)
	key := Key{Fingerprint: "q", Epoch: 0}

	leaderRel, _ := fetch(t, c, key, entry("clean"))
	leaderRel.Rel.Rows[0][0] = value.Text("dirty-leader")

	h1, _ := fetch(t, c, key, entry("MUST NOT RUN"))
	if got := h1.Rel.Rows[0][0].String(); got != "clean" {
		t.Errorf("leader mutation leaked into the cache: %q", got)
	}
	h1.Rel.Rows[0][0] = value.Text("dirty-hit")
	h2, _ := fetch(t, c, key, entry("MUST NOT RUN"))
	if got := h2.Rel.Rows[0][0].String(); got != "clean" {
		t.Errorf("hit mutation leaked into the cache: %q", got)
	}
}

func TestEpochKeysAreDistinct(t *testing.T) {
	c := New(4)
	if _, cached := fetch(t, c, Key{Fingerprint: "q", Epoch: 0}, entry("old")); cached {
		t.Fatal("unexpected hit")
	}
	// Same fingerprint, newer epoch: must miss and recompute.
	got, cached := fetch(t, c, Key{Fingerprint: "q", Epoch: 1}, entry("new"))
	if cached {
		t.Error("lookup at a newer epoch hit a stale entry")
	}
	if got.Rel.Rows[0][0].String() != "new" {
		t.Errorf("got %q", got.Rel.Rows[0][0].String())
	}
}

func TestEvictEpochsBelow(t *testing.T) {
	c := New(8)
	fetch(t, c, Key{Fingerprint: "a", Epoch: 0}, entry("a"))
	fetch(t, c, Key{Fingerprint: "b", Epoch: 1}, entry("b"))
	c.EvictEpochsBelow(1)
	if c.Len() != 1 {
		t.Errorf("after eviction len = %d, want 1 (only the epoch-1 entry)", c.Len())
	}
	// A late insert under an evicted epoch must be dropped: an execution
	// that straddled the bump cannot resurrect a stale epoch.
	fetch(t, c, Key{Fingerprint: "late", Epoch: 0}, entry("late"))
	if _, cached := fetch(t, c, Key{Fingerprint: "late", Epoch: 0}, entry("recomputed")); cached {
		t.Error("stale-epoch insert was retained")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	fetch(t, c, Key{Fingerprint: "a"}, entry("a"))
	fetch(t, c, Key{Fingerprint: "b"}, entry("b"))
	// Touch a so b is the LRU victim.
	fetch(t, c, Key{Fingerprint: "a"}, entry("MUST NOT RUN"))
	fetch(t, c, Key{Fingerprint: "c"}, entry("c"))
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, cached := fetch(t, c, Key{Fingerprint: "a"}, entry("a2")); !cached {
		t.Error("recently used entry was evicted")
	}
	if _, cached := fetch(t, c, Key{Fingerprint: "b"}, entry("b2")); cached {
		t.Error("LRU entry survived over capacity")
	}
}

// TestSingleflight: concurrent identical fetches share one computation.
func TestSingleflight(t *testing.T) {
	c := New(4)
	var calls atomic.Int32
	release := make(chan struct{})
	const k = 16
	var wg sync.WaitGroup
	rels := make([]*Entry, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _, err := c.Fetch(context.Background(), Key{Fingerprint: "q"}, func() (*Entry, error) {
				calls.Add(1)
				<-release
				return entry("shared"), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			rels[i] = got
		}(i)
	}
	// The leader blocks in compute until released; every other goroutine
	// either joins its flight or hits the populated entry afterwards.
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("%d computations for %d concurrent identical fetches, want 1", n, k)
	}
	for i, e := range rels {
		if e == nil || e.Rel.Rows[0][0].String() != "shared" {
			t.Fatalf("goroutine %d got %v", i, e)
		}
	}
	st := c.Stats()
	if st.Hits != k-1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want %d hits / 1 miss", st, k-1)
	}
}

// TestLeaderErrorNotCachedAndJoinersRetry: errors are never cached, and
// a joiner whose leader failed retries instead of inheriting the error.
func TestLeaderErrorNotCachedAndJoinersRetry(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	if _, _, err := c.Fetch(context.Background(), Key{Fingerprint: "q"}, func() (*Entry, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("leader error = %v", err)
	}
	got, cached, err := c.Fetch(context.Background(), Key{Fingerprint: "q"}, func() (*Entry, error) {
		return entry("ok"), nil
	})
	if err != nil || cached || got.Rel.Rows[0][0].String() != "ok" {
		t.Errorf("retry after failed leader: %v %v %v", got, cached, err)
	}
}

// TestLeaderPanicDoesNotPoisonKey: a panicking compute must settle its
// flight (joiners retry) instead of leaving the key blocked forever,
// and the panic must reach the leader's caller.
func TestLeaderPanicDoesNotPoisonKey(t *testing.T) {
	c := New(4)
	key := Key{Fingerprint: "q"}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		c.Fetch(context.Background(), key, func() (*Entry, error) { panic("boom") })
	}()

	// The key must be usable again: a fresh fetch computes and succeeds.
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, cached, err := c.Fetch(context.Background(), key, func() (*Entry, error) {
			return entry("recovered"), nil
		})
		if err != nil || cached || got.Rel.Rows[0][0].String() != "recovered" {
			t.Errorf("fetch after leader panic: %v %v %v", got, cached, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cache key poisoned: fetch after leader panic never returned")
	}
}

func TestFetchContextCancelled(t *testing.T) {
	c := New(4)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Fetch(context.Background(), Key{Fingerprint: "q"}, func() (*Entry, error) {
			close(started)
			<-release
			return entry("late"), nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Fetch(ctx, Key{Fingerprint: "q"}, func() (*Entry, error) {
		return entry("MUST NOT RUN"), nil
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled joiner error = %v", err)
	}
	close(release)
}

// TestConcurrentMixedKeys hammers the cache from many goroutines under
// -race: distinct keys, shared keys, and epoch evictions interleaved.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := Key{Fingerprint: fmt.Sprintf("q%d", i%5), Epoch: uint64(i % 3)}
				got, _, err := c.Fetch(context.Background(), key, func() (*Entry, error) {
					return entry(key.Fingerprint), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if got.Rel.Rows[0][0].String() != key.Fingerprint {
					t.Errorf("wrong relation for %v", key)
					return
				}
				if i%17 == 0 {
					c.EvictEpochsBelow(uint64(i % 3))
				}
			}
		}(g)
	}
	wg.Wait()
}
