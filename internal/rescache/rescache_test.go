package rescache

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/schema"
	"repro/internal/value"
)

// rel builds a one-column relation holding the given strings.
func rel(cells ...string) *schema.Relation {
	r := schema.NewRelation(schema.New(schema.Column{Name: "v", Type: value.KindString}))
	for _, c := range cells {
		r.Append(schema.Tuple{value.Text(c)})
	}
	return r
}

func entry(cells ...string) *Entry { return &Entry{Rel: rel(cells...), Plan: "plan"} }

// entryT is entry with an explicit (sorted) component set.
func entryT(tables []string, cells ...string) *Entry {
	e := entry(cells...)
	e.Tables = tables
	return e
}

func fetch(t *testing.T, c *Cache, key Key, e *Entry) (*Entry, bool) {
	t.Helper()
	got, cached, err := c.Fetch(context.Background(), key, func() (*Entry, error) { return e, nil })
	if err != nil {
		t.Fatal(err)
	}
	return got, cached
}

// epochs is a test stand-in for the runtime's per-component epoch store:
// current renders a stamp, bump advances one component and invalidates.
type epochs struct {
	mu sync.Mutex
	m  map[string]uint64
}

func newEpochs() *epochs { return &epochs{m: map[string]uint64{}} }

func (e *epochs) current(tables []string) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var b strings.Builder
	for _, t := range tables {
		fmt.Fprintf(&b, "%s=%d;", t, e.m[t])
	}
	return b.String()
}

func (e *epochs) bump(c *Cache, comp string) {
	e.mu.Lock()
	e.m[comp]++
	e.mu.Unlock()
	c.InvalidateComponent(comp)
}

func TestFetchPopulatesAndHits(t *testing.T) {
	c := New(Config{Capacity: 4})
	key := Key{Fingerprint: "q1"}

	got, cached := fetch(t, c, key, entry("a", "b"))
	if cached {
		t.Error("first fetch reported cached")
	}
	if got.Rel.Cardinality() != 2 {
		t.Errorf("leader got %d rows", got.Rel.Cardinality())
	}

	got2, cached2 := fetch(t, c, key, entry("MUST NOT RUN"))
	if !cached2 {
		t.Error("second fetch missed")
	}
	if got2.Rel.String() != got.Rel.String() {
		t.Errorf("hit diverged: %q vs %q", got2.Rel.String(), got.Rel.String())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1/1/1", st)
	}
	if st.Bytes <= 0 {
		t.Errorf("resident bytes = %d, want > 0", st.Bytes)
	}
}

// TestHitsAreIsolatedCopies: mutating a relation handed out by the cache
// (or the one the populating caller kept) must not corrupt later hits.
func TestHitsAreIsolatedCopies(t *testing.T) {
	c := New(Config{Capacity: 4})
	key := Key{Fingerprint: "q"}

	leaderRel, _ := fetch(t, c, key, entry("clean"))
	leaderRel.Rel.Rows[0][0] = value.Text("dirty-leader")

	h1, _ := fetch(t, c, key, entry("MUST NOT RUN"))
	if got := h1.Rel.Rows[0][0].String(); got != "clean" {
		t.Errorf("leader mutation leaked into the cache: %q", got)
	}
	h1.Rel.Rows[0][0] = value.Text("dirty-hit")
	h2, _ := fetch(t, c, key, entry("MUST NOT RUN"))
	if got := h2.Rel.Rows[0][0].String(); got != "clean" {
		t.Errorf("hit mutation leaked into the cache: %q", got)
	}
}

func TestStampKeysAreDistinct(t *testing.T) {
	c := New(Config{Capacity: 4})
	if _, cached := fetch(t, c, Key{Fingerprint: "q", Stamp: "llm:city=0;"}, entry("old")); cached {
		t.Fatal("unexpected hit")
	}
	// Same fingerprint, newer stamp: must miss and recompute.
	got, cached := fetch(t, c, Key{Fingerprint: "q", Stamp: "llm:city=1;"}, entry("new"))
	if cached {
		t.Error("lookup at a newer stamp hit a stale entry")
	}
	if got.Rel.Rows[0][0].String() != "new" {
		t.Errorf("got %q", got.Rel.Rows[0][0].String())
	}
}

// TestInvalidateComponentSelective: rebinding one table must evict only
// the entries reading it; entries over other tables keep hitting.
func TestInvalidateComponentSelective(t *testing.T) {
	ep := newEpochs()
	c := New(Config{Capacity: 8, CurrentStamp: ep.current})
	city, country := []string{"llm:city"}, []string{"llm:country"}
	both := []string{"llm:city", "llm:country"}

	fetch(t, c, Key{Fingerprint: "city", Stamp: ep.current(city)}, entryT(city, "c"))
	fetch(t, c, Key{Fingerprint: "country", Stamp: ep.current(country)}, entryT(country, "n"))
	fetch(t, c, Key{Fingerprint: "join", Stamp: ep.current(both)}, entryT(both, "j"))

	ep.bump(c, "llm:city")
	if got := c.Len(); got != 1 {
		t.Fatalf("after bumping llm:city len = %d, want 1 (only the country entry)", got)
	}
	if _, cached := fetch(t, c, Key{Fingerprint: "country", Stamp: ep.current(country)}, entry("MUST NOT RUN")); !cached {
		t.Error("country entry was invalidated by a city rebind")
	}
	// City and join lookups at the new stamp must recompute.
	if _, cached := fetch(t, c, Key{Fingerprint: "city", Stamp: ep.current(city)}, entryT(city, "c2")); cached {
		t.Error("city entry survived its component bump")
	}
	if _, cached := fetch(t, c, Key{Fingerprint: "join", Stamp: ep.current(both)}, entryT(both, "j2")); cached {
		t.Error("join entry survived its component bump")
	}
}

// TestStaleInsertDropped: an execution that straddles a bump must not
// resurrect a stale relation — its insert is validated against the
// current stamp and dropped.
func TestStaleInsertDropped(t *testing.T) {
	ep := newEpochs()
	c := New(Config{Capacity: 8, CurrentStamp: ep.current})
	city := []string{"llm:city"}
	key := Key{Fingerprint: "q", Stamp: ep.current(city)}

	got, cached, err := c.Fetch(context.Background(), key, func() (*Entry, error) {
		// The bump lands while this execution is in flight.
		ep.bump(c, "llm:city")
		return entryT(city, "stale"), nil
	})
	if err != nil || cached {
		t.Fatalf("leader fetch: cached=%v err=%v", cached, err)
	}
	if got.Rel.Rows[0][0].String() != "stale" {
		t.Fatalf("leader must still receive its own result, got %q", got.Rel.Rows[0][0].String())
	}
	if c.Len() != 0 {
		t.Errorf("stale insert was retained (len = %d)", c.Len())
	}
}

// TestInvalidateKeepsCurrentEntries: an insert that raced the bump but
// landed already re-stamped is valid and must survive the invalidation
// scan.
func TestInvalidateKeepsCurrentEntries(t *testing.T) {
	ep := newEpochs()
	c := New(Config{Capacity: 8, CurrentStamp: ep.current})
	city := []string{"llm:city"}
	ep.m["llm:city"] = 3
	fetch(t, c, Key{Fingerprint: "q", Stamp: ep.current(city)}, entryT(city, "fresh"))
	// A bump-less invalidation scan (as if the epoch write already
	// happened before the insert): the entry's stamp is current, keep it.
	c.InvalidateComponent("llm:city")
	if c.Len() != 1 {
		t.Errorf("current-stamp entry was evicted (len = %d)", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{Capacity: 2})
	fetch(t, c, Key{Fingerprint: "a"}, entry("a"))
	fetch(t, c, Key{Fingerprint: "b"}, entry("b"))
	// Touch a so b is the LRU victim.
	fetch(t, c, Key{Fingerprint: "a"}, entry("MUST NOT RUN"))
	fetch(t, c, Key{Fingerprint: "c"}, entry("c"))
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, cached := fetch(t, c, Key{Fingerprint: "a"}, entry("a2")); !cached {
		t.Error("recently used entry was evicted")
	}
	if _, cached := fetch(t, c, Key{Fingerprint: "b"}, entry("b2")); cached {
		t.Error("LRU entry survived over capacity")
	}
}

// TestByteBudgetEviction: the byte cap evicts from the LRU cold end even
// when the entry capacity is not reached, and a single entry larger than
// the whole budget is not cached at all.
func TestByteBudgetEviction(t *testing.T) {
	// Measure one entry's approximate size through a throwaway cache.
	probe := New(Config{Capacity: 4})
	fetch(t, probe, Key{Fingerprint: "probe"}, entry("xxxxxxxxxxxxxxxx"))
	one := probe.Stats().Bytes
	if one <= 0 {
		t.Fatalf("probe bytes = %d", one)
	}

	c := New(Config{Capacity: 16, MaxBytes: one + one/2})
	fetch(t, c, Key{Fingerprint: "a"}, entry("xxxxxxxxxxxxxxxx"))
	fetch(t, c, Key{Fingerprint: "b"}, entry("xxxxxxxxxxxxxxxx"))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (byte budget holds one entry)", c.Len())
	}
	if _, cached := fetch(t, c, Key{Fingerprint: "b"}, entry("MUST NOT RUN")); !cached {
		t.Error("newest entry was the byte-eviction victim")
	}
	if st := c.Stats(); st.Bytes > one+one/2 {
		t.Errorf("resident bytes %d exceed the budget %d", st.Bytes, one+one/2)
	}

	tiny := New(Config{Capacity: 16, MaxBytes: one - 1})
	fetch(t, tiny, Key{Fingerprint: "big"}, entry("xxxxxxxxxxxxxxxx"))
	if tiny.Len() != 0 {
		t.Errorf("oversized entry was cached (len = %d)", tiny.Len())
	}
}

// TestCandidatesAndSubsumed: the subsumption index returns only
// producer-capable entries of the exact table set and stamp, smallest
// relation first, and Subsumed counts its own statistic.
func TestCandidatesAndSubsumed(t *testing.T) {
	c := New(Config{Capacity: 8})
	city := []string{"llm:city"}
	prod := func(conjs ...string) *Producer {
		return &Producer{Opts: "o|", FromKey: "from", FromLabel: "LLM.city AS c", Conjuncts: conjs}
	}
	big := entryT(city, "a", "b", "c")
	big.Prod = prod()
	small := entryT(city, "a")
	small.Prod = prod("c.pop > 5")
	plain := entryT(city, "x") // no producer: exact-only entry
	other := entryT([]string{"llm:country"}, "y")
	other.Prod = prod()

	fetch(t, c, Key{Fingerprint: "big", Stamp: "s"}, big)
	fetch(t, c, Key{Fingerprint: "small", Stamp: "s"}, small)
	fetch(t, c, Key{Fingerprint: "plain", Stamp: "s"}, plain)
	fetch(t, c, Key{Fingerprint: "stale", Stamp: "old"}, big.clone())
	fetch(t, c, Key{Fingerprint: "other", Stamp: "s"}, other)

	got := c.Candidates(TablesKey(city), "s")
	if len(got) != 2 {
		t.Fatalf("candidates = %d, want 2", len(got))
	}
	if got[0].Key.Fingerprint != "small" || got[1].Key.Fingerprint != "big" {
		t.Errorf("candidate order = %q, %q; want small, big", got[0].Key.Fingerprint, got[1].Key.Fingerprint)
	}
	if got[0].Rows != 1 || got[1].Rows != 3 {
		t.Errorf("candidate rows = %d, %d", got[0].Rows, got[1].Rows)
	}
	if got[1].Prod.FromLabel != "LLM.city AS c" {
		t.Errorf("producer metadata lost: %+v", got[1].Prod)
	}

	e, ok := c.Subsumed(Key{Fingerprint: "big", Stamp: "s"})
	if !ok || e.Rel.Cardinality() != 3 {
		t.Fatalf("Subsumed: ok=%v entry=%v", ok, e)
	}
	e.Rel.Rows[0][0] = value.Text("dirty")
	if e2, _ := c.Subsumed(Key{Fingerprint: "big", Stamp: "s"}); e2.Rel.Rows[0][0].String() != "a" {
		t.Error("Subsumed handed out an aliased relation")
	}
	if _, ok := c.Subsumed(Key{Fingerprint: "gone", Stamp: "s"}); ok {
		t.Error("Subsumed found a nonexistent entry")
	}
	st := c.Stats()
	if st.SubsumedHits != 2 {
		t.Errorf("subsumed hits = %d, want 2", st.SubsumedHits)
	}
	if st.Hits != 0 {
		t.Errorf("exact hits = %d, want 0 (Subsumed must not count as exact)", st.Hits)
	}
}

// TestSingleflight: concurrent identical fetches share one computation.
func TestSingleflight(t *testing.T) {
	c := New(Config{Capacity: 4})
	var calls atomic.Int32
	release := make(chan struct{})
	const k = 16
	var wg sync.WaitGroup
	rels := make([]*Entry, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _, err := c.Fetch(context.Background(), Key{Fingerprint: "q"}, func() (*Entry, error) {
				calls.Add(1)
				<-release
				return entry("shared"), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			rels[i] = got
		}(i)
	}
	// The leader blocks in compute until released; every other goroutine
	// either joins its flight or hits the populated entry afterwards.
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("%d computations for %d concurrent identical fetches, want 1", n, k)
	}
	for i, e := range rels {
		if e == nil || e.Rel.Rows[0][0].String() != "shared" {
			t.Fatalf("goroutine %d got %v", i, e)
		}
	}
	st := c.Stats()
	if st.Hits != k-1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want %d hits / 1 miss", st, k-1)
	}
}

// TestLeaderErrorNotCachedAndJoinersRetry: errors are never cached, and
// a joiner whose leader failed retries instead of inheriting the error.
func TestLeaderErrorNotCachedAndJoinersRetry(t *testing.T) {
	c := New(Config{Capacity: 4})
	boom := errors.New("boom")
	if _, _, err := c.Fetch(context.Background(), Key{Fingerprint: "q"}, func() (*Entry, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("leader error = %v", err)
	}
	got, cached, err := c.Fetch(context.Background(), Key{Fingerprint: "q"}, func() (*Entry, error) {
		return entry("ok"), nil
	})
	if err != nil || cached || got.Rel.Rows[0][0].String() != "ok" {
		t.Errorf("retry after failed leader: %v %v %v", got, cached, err)
	}
}

// TestLeaderPanicDoesNotPoisonKey: a panicking compute must settle its
// flight (joiners retry) instead of leaving the key blocked forever,
// and the panic must reach the leader's caller.
func TestLeaderPanicDoesNotPoisonKey(t *testing.T) {
	c := New(Config{Capacity: 4})
	key := Key{Fingerprint: "q"}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		c.Fetch(context.Background(), key, func() (*Entry, error) { panic("boom") })
	}()

	// The key must be usable again: a fresh fetch computes and succeeds.
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, cached, err := c.Fetch(context.Background(), key, func() (*Entry, error) {
			return entry("recovered"), nil
		})
		if err != nil || cached || got.Rel.Rows[0][0].String() != "recovered" {
			t.Errorf("fetch after leader panic: %v %v %v", got, cached, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cache key poisoned: fetch after leader panic never returned")
	}
}

func TestFetchContextCancelled(t *testing.T) {
	c := New(Config{Capacity: 4})
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Fetch(context.Background(), Key{Fingerprint: "q"}, func() (*Entry, error) {
			close(started)
			<-release
			return entry("late"), nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Fetch(ctx, Key{Fingerprint: "q"}, func() (*Entry, error) {
		return entry("MUST NOT RUN"), nil
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled joiner error = %v", err)
	}
	close(release)
}

// TestConcurrentInvalidationStorm hammers the cache from many goroutines
// under -race: fetches over per-component stamps, subsumption lookups,
// and component bumps interleaved. Invariant: a fetch keyed at the
// current stamp never observes a relation computed for another
// component's state, and nothing deadlocks.
func TestConcurrentInvalidationStorm(t *testing.T) {
	ep := newEpochs()
	c := New(Config{Capacity: 16, CurrentStamp: ep.current})
	comps := []string{"llm:a", "llm:b", "llm:c"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				comp := comps[i%len(comps)]
				tables := []string{comp}
				key := Key{Fingerprint: fmt.Sprintf("q%d", i%5), Stamp: ep.current(tables)}
				want := key.Fingerprint + "@" + key.Stamp
				got, _, err := c.Fetch(context.Background(), key, func() (*Entry, error) {
					e := entryT(tables, want)
					e.Prod = &Producer{Opts: "o|", FromKey: key.Fingerprint, FromLabel: comp}
					return e, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if got.Rel.Rows[0][0].String() != want {
					t.Errorf("stale relation for %v: got %q", key, got.Rel.Rows[0][0].String())
					return
				}
				switch {
				case i%31 == 0:
					ep.bump(c, comp)
				case i%7 == 0:
					for _, cand := range c.Candidates(TablesKey(tables), ep.current(tables)) {
						if e, ok := c.Subsumed(cand.Key); ok {
							if e.Rel.Rows[0][0].String() != cand.Key.Fingerprint+"@"+cand.Key.Stamp {
								t.Errorf("subsumption served a mismatched relation")
								return
							}
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// recordingSink logs sink callbacks under its own lock, and optionally
// re-enters the cache on StoreEntry to prove hooks fire outside c.mu.
type recordingSink struct {
	mu      sync.Mutex
	stores  []Key
	drops   []Key
	reenter *Cache
}

func (s *recordingSink) StoreEntry(key Key, e *Entry) {
	if s.reenter != nil {
		s.reenter.Len() // would deadlock if hooks ran under the cache mutex
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stores = append(s.stores, key)
}

func (s *recordingSink) DropEntry(key Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drops = append(s.drops, key)
}

func (s *recordingSink) counts() (stores, drops int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stores), len(s.drops)
}

// TestSinkNotifications: inserts reach StoreEntry, invalidation and
// eviction reach DropEntry, and a stale-stamp insert is dropped (the
// sink must not keep a relation the cache refused).
func TestSinkNotifications(t *testing.T) {
	ep := newEpochs()
	c := New(Config{Capacity: 2, CurrentStamp: ep.current})
	sink := &recordingSink{reenter: c}
	c.SetSink(sink)
	city := []string{"llm:city"}

	fetch(t, c, Key{Fingerprint: "a", Stamp: ep.current(city)}, entryT(city, "a"))
	if stores, _ := sink.counts(); stores != 1 {
		t.Fatalf("stores after insert = %d, want 1", stores)
	}

	// Invalidation drops through the sink.
	ep.bump(c, "llm:city")
	if _, drops := sink.counts(); drops != 1 {
		t.Fatalf("drops after invalidate = %d, want 1", drops)
	}

	// A stale-stamp insert is refused and the sink told to drop it.
	stale := Key{Fingerprint: "b", Stamp: "llm:city=0;"}
	fetch(t, c, stale, entryT(city, "b"))
	sink.mu.Lock()
	lastDrop := sink.drops[len(sink.drops)-1]
	sink.mu.Unlock()
	if lastDrop != stale {
		t.Fatalf("stale insert not dropped through sink: %+v", lastDrop)
	}

	// Capacity eviction drops the coldest key through the sink.
	for _, fp := range []string{"c", "d", "e"} {
		fetch(t, c, Key{Fingerprint: fp, Stamp: ep.current(city)}, entryT(city, fp))
	}
	sink.mu.Lock()
	lastDrop = sink.drops[len(sink.drops)-1]
	sink.mu.Unlock()
	if lastDrop.Fingerprint != "c" {
		t.Errorf("eviction drop = %q, want coldest key c", lastDrop.Fingerprint)
	}
}

// TestDumpLoadRoundTrip: a dump replayed through Load reconstructs the
// entries and their LRU order, loads are stamp-validated, and Load never
// echoes StoreEntry back.
func TestDumpLoadRoundTrip(t *testing.T) {
	ep := newEpochs()
	src := New(Config{Capacity: 8, CurrentStamp: ep.current})
	city := []string{"llm:city"}
	for _, fp := range []string{"cold", "mid", "hot"} {
		fetch(t, src, Key{Fingerprint: fp, Stamp: ep.current(city)}, entryT(city, fp))
	}
	dump := src.Dump()
	if len(dump) != 3 || dump[0].Key.Fingerprint != "cold" || dump[2].Key.Fingerprint != "hot" {
		t.Fatalf("dump order = %+v, want cold..hot", dump)
	}

	dst := New(Config{Capacity: 2, CurrentStamp: ep.current})
	sink := &recordingSink{}
	dst.SetSink(sink)
	loaded := 0
	for _, d := range dump {
		if dst.Load(d.Key, d.Entry) {
			loaded++
		}
	}
	if loaded != 3 {
		t.Fatalf("loaded = %d, want 3 (capacity eviction happens after admit)", loaded)
	}
	// Capacity 2: "cold" was evicted again when "hot" loaded; LRU order kept.
	if dst.Len() != 2 {
		t.Fatalf("dst len = %d, want 2", dst.Len())
	}
	if _, ok := dst.Subsumed(Key{Fingerprint: "cold", Stamp: ep.current(city)}); ok {
		t.Error("coldest dumped entry survived a smaller capacity")
	}
	if stores, _ := sink.counts(); stores != 0 {
		t.Errorf("Load echoed %d StoreEntry calls, want 0", stores)
	}

	got, _, err := dst.Fetch(context.Background(), Key{Fingerprint: "hot", Stamp: ep.current(city)},
		func() (*Entry, error) { return nil, errors.New("must not execute") })
	if err != nil || got.Rel.Rows[0][0].String() != "hot" {
		t.Fatalf("warm-loaded entry not served: %v %v", got, err)
	}

	// A load whose stamp is stale is refused.
	ep.bump(dst, "llm:city")
	if dst.Load(dump[1].Key, dump[1].Entry) {
		t.Error("stale-stamp load admitted")
	}
}

// TestCandidatesConcurrentWithInserts hammers Candidates against
// concurrent inserts and invalidation under -race: the clone-outside-
// lock snapshot must never observe a torn entry.
func TestCandidatesConcurrentWithInserts(t *testing.T) {
	ep := newEpochs()
	c := New(Config{Capacity: 64, CurrentStamp: ep.current})
	city := []string{"llm:city"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := Key{Fingerprint: fmt.Sprintf("q%d-%d", g, i%9), Stamp: ep.current(city)}
				e := entryT(city, "v")
				e.Prod = &Producer{Opts: "o|", FromKey: key.Fingerprint, Conjuncts: []string{"c > 1"}}
				c.Fetch(context.Background(), key, func() (*Entry, error) { return e, nil })
				if i%17 == 0 {
					ep.bump(c, "llm:city")
				}
			}
		}(g)
	}
	deadline := time.After(200 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			for _, cand := range c.Candidates(TablesKey(city), ep.current(city)) {
				if len(cand.Prod.Conjuncts) != 1 || cand.Schema == nil {
					t.Errorf("torn candidate: %+v", cand)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkCandidates measures one planning pass's candidate snapshot
// over a populated table set — the path that used to deep-clone every
// schema under the global mutex.
func BenchmarkCandidates(b *testing.B) {
	c := New(Config{Capacity: 256})
	city := []string{"llm:city"}
	for i := 0; i < 64; i++ {
		e := entryT(city, "a", "b", "c", "d")
		e.Prod = &Producer{Opts: "o|", FromKey: fmt.Sprintf("f%d", i), Conjuncts: []string{"c.pop > 5", "c.country = 'x'"}}
		c.Fetch(context.Background(), Key{Fingerprint: fmt.Sprintf("f%d", i), Stamp: "s"},
			func() (*Entry, error) { return e, nil })
	}
	tk := TablesKey(city)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if got := c.Candidates(tk, "s"); len(got) != 64 {
				b.Fatalf("candidates = %d", len(got))
			}
		}
	})
}
