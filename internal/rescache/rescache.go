// Package rescache implements the relation-level result cache: the tier
// above the prompt cache. Where the prompt cache dedups individual model
// calls, this cache stores whole result relations keyed by a canonical
// plan fingerprint plus the per-table epoch stamp of the bindings the
// plan reads, so an identical query arriving again costs zero prompts
// *and* zero planning.
//
// Beyond exact matches the cache is *semantic*: entries whose plan was a
// plain filtered projection (shape Project(Filter*(FROM))) retain their
// producing plan's canonical decomposition (Producer), and Candidates
// exposes them — indexed by the exact table set they read — so the
// session can answer a subsumed query (stricter filters, column subset,
// added LIMIT/ORDER BY/DISTINCT) by evaluating a residual plan over the
// cached relation, again for zero prompts.
//
// Correctness hinges on invalidation: a cached relation is only valid
// for the binding state it was computed under. The runtime keeps one
// epoch per component ("llm:<table>" per LLM binding, "db" for the
// attached store); every key carries the stamp — the serialized epochs
// of exactly the components its plan reads — so rebinding one table
// invalidates only the entries reading it, and unrelated entries
// survive. InvalidateComponent additionally evicts eagerly, and the
// CurrentStamp validator drops inserts whose execution straddled a bump,
// so a stale relation can never resurrect.
//
// A singleflight layer collapses K concurrent identical queries into one
// execution: one leader runs the plan, the other K-1 block on its flight
// and share the relation. Errors are never cached, and a joiner whose
// leader failed retries rather than inheriting the failure (the leader's
// error may be its own cancellation).
package rescache

import (
	"container/list"
	"context"
	"errors"
	"sort"
	"strings"
	"sync"

	"repro/internal/schema"
)

// DefaultSize is the fallback capacity (in relations) of a cache built
// with size 0. Relations are far heavier than single completions, so the
// default is much smaller than the prompt cache's.
const DefaultSize = 256

// Key identifies one cacheable query result.
type Key struct {
	// Fingerprint is the canonical serialization of the built logical
	// plan (literals kept, table bindings folded in) prefixed with every
	// session option that can change the result — see
	// core.Session's result fingerprint.
	Fingerprint string
	// Stamp serializes the per-component binding epochs of exactly the
	// tables the plan reads, captured at lookup time. Rebinding one of
	// them changes the stamp, so entries populated under the old epochs
	// are unreachable — while entries over other tables keep matching.
	Stamp string
}

// Producer is the canonical decomposition of the plan that populated an
// entry, retained so the entry can answer subsumed queries. Only plans
// shaped Project(Filter*(FROM)) qualify — their relations keep the base
// scan's row order and full row set (see logical.Shape.Producer).
type Producer struct {
	// Opts is the result-affecting session-option prefix the producing
	// session ran under; a consumer must match it exactly.
	Opts string
	// FromKey is the canonical serialization of the producing plan's
	// FROM tree; FromLabel its human rendering.
	FromKey   string
	FromLabel string
	// Conjuncts are the canonical texts of the base-filter predicates
	// the producer applied. A consumer whose conjunct set contains all
	// of them is answerable from this entry.
	Conjuncts []string
}

// Entry is one cached query result.
type Entry struct {
	// Rel is the result relation. The cache stores a private deep copy
	// and hands out deep copies, so callers may mutate what they receive.
	Rel *schema.Relation
	// Plan is the EXPLAIN rendering of the plan the populating run
	// executed, served on hits so ?plan=1 responses stay meaningful.
	Plan string
	// Tables are the sorted invalidation components the plan reads
	// ("llm:city", "db"); InvalidateComponent matches against them.
	Tables []string
	// Prod is non-nil when this entry can answer subsumed queries.
	Prod *Producer
}

// clone deep-copies an entry so cache-resident relations never alias
// caller-visible ones.
func (e *Entry) clone() *Entry {
	out := &Entry{Rel: e.Rel.Clone(), Plan: e.Plan, Tables: append([]string(nil), e.Tables...)}
	if e.Prod != nil {
		p := *e.Prod
		p.Conjuncts = append([]string(nil), p.Conjuncts...)
		out.Prod = &p
	}
	return out
}

// approxBytes estimates an entry's resident size: tuples, strings,
// schema and producer metadata, with flat per-object overheads. It is an
// approximation by design — the byte budget is a cap on growth, not an
// allocator accounting.
func approxBytes(e *Entry) int {
	const entryOverhead, tupleOverhead, valueOverhead, colOverhead = 128, 48, 32, 16
	n := entryOverhead + len(e.Plan)
	for _, c := range e.Rel.Schema.Columns {
		n += colOverhead + len(c.Table) + len(c.Name)
	}
	for _, row := range e.Rel.Rows {
		n += tupleOverhead
		for _, v := range row {
			n += valueOverhead + len(v.String())
		}
	}
	for _, t := range e.Tables {
		n += len(t)
	}
	if e.Prod != nil {
		n += len(e.Prod.Opts) + len(e.Prod.FromKey) + len(e.Prod.FromLabel)
		for _, c := range e.Prod.Conjuncts {
			n += len(c)
		}
	}
	return n
}

// Stats is a snapshot of a cache's lifetime counters.
type Stats struct {
	Hits int // exact hits: served from memory or a concurrent in-flight execution
	// SubsumedHits counts queries answered by a residual plan over a
	// cached relation. They are a subset of neither Hits nor Misses:
	// an exact-miss query answered via subsumption counts one Miss
	// (the exact key was absent) and one SubsumedHit (zero prompts
	// were spent anyway).
	SubsumedHits int
	Misses       int // exact misses: required planning (subsumed or full execution)
	Entries      int // relations currently resident
	Bytes        int // approximate resident bytes across all entries
}

// TablesKey canonicalizes a component set into the index key Candidates
// looks up by. Components must already be sorted (logical.Components
// sorts them).
func TablesKey(tables []string) string { return strings.Join(tables, ",") }

// flight is one in-flight execution shared by every concurrent caller of
// the same key; done is closed once entry/err are set.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// cacheItem is one resident result, stored inside the LRU list.
type cacheItem struct {
	key       Key
	entry     *Entry
	bytes     int
	tablesKey string
}

// Config configures a Cache.
type Config struct {
	// Capacity caps resident relations (0 or negative: DefaultSize).
	Capacity int
	// MaxBytes caps the approximate resident bytes (0: unlimited). The
	// LRU evicts from the cold end until under budget; an entry larger
	// than the whole budget is not cached at all.
	MaxBytes int
	// CurrentStamp, when non-nil, returns the owner's current epoch
	// stamp for a component set. Inserts whose key stamp no longer
	// matches are dropped — an execution that straddled a bump cannot
	// resurrect a stale relation — and InvalidateComponent keeps
	// entries that are still current.
	CurrentStamp func(tables []string) string
}

// Sink observes residency changes, letting an owner mirror the cache to
// durable storage. Hooks are invoked outside the cache mutex (so a sink
// may do I/O) but sequentially consistent per key is NOT guaranteed
// under concurrent churn; a persistent sink must tolerate a DropEntry
// for a key it never stored and resolve races by its own ordering.
// Entries passed to StoreEntry are the cache's private immutable copies:
// read-only, safe to retain.
type Sink interface {
	StoreEntry(key Key, e *Entry)
	DropEntry(key Key)
}

// Cache is a concurrency-safe LRU of result relations with per-table
// epoch stamps, a subsumption index by table set, and a singleflight
// layer. A runtime shares one Cache across all its sessions.
type Cache struct {
	mu       sync.Mutex
	capacity int
	maxBytes int
	current  func([]string) string
	sink     Sink
	entries  map[Key]*list.Element
	order    *list.List // front = most recently used
	// sets indexes resident entries by the exact table set they read,
	// so Candidates scans only plausibly-matching entries.
	sets     map[string]map[*list.Element]bool
	flights  map[Key]*flight
	hits     int
	subsumed int
	misses   int
	bytes    int
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultSize
	}
	return &Cache{
		capacity: cfg.Capacity,
		maxBytes: cfg.MaxBytes,
		current:  cfg.CurrentStamp,
		entries:  map[Key]*list.Element{},
		order:    list.New(),
		sets:     map[string]map[*list.Element]bool{},
		flights:  map[Key]*flight{},
	}
}

// SetSink installs (or, with nil, removes) the residency observer.
// Install it after any Load replay so warm-loaded entries are not echoed
// straight back to the store they came from.
func (c *Cache) SetSink(s Sink) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sink = s
}

// Len reports the number of resident relations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the lifetime counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, SubsumedHits: c.subsumed, Misses: c.misses,
		Entries: c.order.Len(), Bytes: c.bytes}
}

// removeLocked drops one resident entry and its index records.
func (c *Cache) removeLocked(el *list.Element) {
	item := el.Value.(*cacheItem)
	c.order.Remove(el)
	delete(c.entries, item.key)
	c.bytes -= item.bytes
	if set := c.sets[item.tablesKey]; set != nil {
		delete(set, el)
		if len(set) == 0 {
			delete(c.sets, item.tablesKey)
		}
	}
}

// InvalidateComponent evicts every entry whose plan reads the given
// component ("llm:<table>" or "db") and whose stamp is no longer
// current. The runtime calls this on every rebind so invalidated
// relations free their memory immediately — and entries over other
// tables are untouched.
func (c *Cache) InvalidateComponent(comp string) {
	c.mu.Lock()
	var victims []*list.Element
	for tk, set := range c.sets {
		if !tablesKeyHas(tk, comp) {
			continue
		}
		for el := range set {
			item := el.Value.(*cacheItem)
			// An insert that raced the bump and landed already
			// re-stamped is still valid; keep it.
			if c.current != nil && c.current(item.entry.Tables) == item.key.Stamp {
				continue
			}
			victims = append(victims, el)
		}
	}
	dropped := make([]Key, 0, len(victims))
	for _, el := range victims {
		dropped = append(dropped, el.Value.(*cacheItem).key)
		c.removeLocked(el)
	}
	sink := c.sink
	c.mu.Unlock()
	if sink != nil {
		for _, k := range dropped {
			sink.DropEntry(k)
		}
	}
}

// tablesKeyHas reports whether the comma-joined component set contains
// comp.
func tablesKeyHas(tablesKey, comp string) bool {
	for _, t := range strings.Split(tablesKey, ",") {
		if t == comp {
			return true
		}
	}
	return false
}

// insertLocked stores an entry (already cloned by the caller), evicting
// from the LRU's cold end while over the entry capacity or the byte
// budget. Inserts whose stamp is no longer current are dropped. It
// reports whether the entry is resident after the insert (eviction may
// consume it immediately) and the keys evicted to make room, so the
// caller can fire sink hooks after unlocking.
func (c *Cache) insertLocked(key Key, entry *Entry) (stored bool, evicted []Key) {
	if c.current != nil && c.current(entry.Tables) != key.Stamp {
		return false, nil
	}
	if el, ok := c.entries[key]; ok {
		item := el.Value.(*cacheItem)
		b := approxBytes(entry)
		c.bytes += b - item.bytes
		item.entry, item.bytes = entry, b
		c.order.MoveToFront(el)
	} else {
		item := &cacheItem{key: key, entry: entry, bytes: approxBytes(entry), tablesKey: TablesKey(entry.Tables)}
		el := c.order.PushFront(item)
		c.entries[key] = el
		if c.sets[item.tablesKey] == nil {
			c.sets[item.tablesKey] = map[*list.Element]bool{}
		}
		c.sets[item.tablesKey][el] = true
		c.bytes += item.bytes
	}
	// Byte eviction may consume the whole list: a single relation larger
	// than the budget is simply not cached.
	for c.order.Len() > 0 && (c.order.Len() > c.capacity || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		back := c.order.Back()
		evicted = append(evicted, back.Value.(*cacheItem).key)
		c.removeLocked(back)
	}
	_, stored = c.entries[key]
	return stored, evicted
}

// notifySink fires the post-insert hooks for one settled insert: drops
// for evicted keys, then the store for the new entry when it stayed
// resident. Must be called WITHOUT c.mu held.
func notifySink(sink Sink, key Key, entry *Entry, stored bool, evicted []Key) {
	if sink == nil {
		return
	}
	for _, k := range evicted {
		if k != key {
			sink.DropEntry(k)
		}
	}
	if stored {
		sink.StoreEntry(key, entry)
	} else {
		// Stale-stamp or over-budget: whatever the store holds under this
		// key is at best stale; make sure it cannot outlive the insert.
		sink.DropEntry(key)
	}
}

// Candidate is the cheap metadata view of one subsumption-capable entry,
// returned by Candidates so the session can match and cost residual
// plans without cloning any relation.
type Candidate struct {
	Key Key
	// Rows is the cached cardinality; Schema the cached relation's
	// output schema (cloned — safe to hold).
	Rows   int
	Schema *schema.Schema
	Prod   Producer
}

// Candidates returns the subsumption-capable entries reading exactly the
// given table set under the given stamp, fewest rows first (a smaller
// cached relation makes a cheaper residual scan), fingerprint-ordered on
// ties so candidate order — and therefore plan choice on cost ties — is
// deterministic.
func (c *Cache) Candidates(tablesKey, stamp string) []Candidate {
	// Resident entries are immutable — inserts replace the *Entry pointer,
	// never mutate one in place — so only the pointer snapshot needs the
	// lock; the per-candidate schema and conjunct clones (the expensive
	// part, proportional to candidate count × schema width) happen outside
	// it and no longer serialize concurrent planning passes.
	c.mu.Lock()
	type ref struct {
		key Key
		e   *Entry
	}
	var refs []ref
	for el := range c.sets[tablesKey] {
		item := el.Value.(*cacheItem)
		if item.key.Stamp != stamp || item.entry.Prod == nil {
			continue
		}
		refs = append(refs, ref{key: item.key, e: item.entry})
	}
	c.mu.Unlock()

	out := make([]Candidate, 0, len(refs))
	for _, r := range refs {
		p := *r.e.Prod
		p.Conjuncts = append([]string(nil), p.Conjuncts...)
		out = append(out, Candidate{
			Key:    r.key,
			Rows:   r.e.Rel.Cardinality(),
			Schema: r.e.Rel.Schema.Clone(),
			Prod:   p,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rows != out[j].Rows {
			return out[i].Rows < out[j].Rows
		}
		return out[i].Key.Fingerprint < out[j].Key.Fingerprint
	})
	return out
}

// Subsumed fetches the entry a winning residual plan reads, counting a
// subsumption hit. The entry may have been evicted since Candidates ran;
// the caller falls back to fresh execution then.
func (c *Cache) Subsumed(key Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	c.subsumed++
	return el.Value.(*cacheItem).entry.clone(), true
}

// Peek returns the resident entry for key without joining or starting a
// singleflight — the streaming path's hit probe. A hit replays the
// cached relation incrementally; a miss streams a fresh execution
// outside the singleflight (rows must leave before the relation
// completes, so the stream cannot lead a flight) and populates the
// cache through Fetch with the finished relation. Peek counts a hit but
// never a miss: the populating Fetch accounts the miss.
func (c *Cache) Peek(key Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheItem).entry.clone(), true
}

// Fetch returns the result for key: from the cache when resident, from a
// concurrent identical in-flight execution when one exists, otherwise by
// invoking compute and storing its result. The returned bool reports
// whether the result came from the cache or a shared flight — false
// means this caller executed the query itself (and received compute's
// own return value; hits and joiners receive a private deep copy).
func (c *Cache) Fetch(ctx context.Context, key Key, compute func() (*Entry, error)) (*Entry, bool, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			c.hits++
			entry := el.Value.(*cacheItem).entry
			c.mu.Unlock()
			return entry.clone(), true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				return f.entry.clone(), true, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
			continue // leader failed; next round joins a fresh flight or leads
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.misses++
		c.mu.Unlock()

		entry, err := c.lead(f, key, compute)
		return entry, false, err
	}
}

// lead executes compute as the leader of flight f and settles the
// flight no matter what: even when compute panics (an HTTP server
// recovers handler panics and keeps running), joiners must see the
// flight resolve with an error and retry rather than block forever on a
// poisoned key. The panic itself propagates to the leader's caller.
func (c *Cache) lead(f *flight, key Key, compute func() (*Entry, error)) (entry *Entry, err error) {
	settled := false
	defer func() {
		if settled {
			return
		}
		f.err = errors.New("rescache: leader panicked")
		close(f.done)
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
	}()

	entry, err = compute()
	if err == nil {
		// The flight and the cache keep a private copy; the leader's
		// relation stays its own.
		f.entry = entry.clone()
	}
	f.err = err
	settled = true
	close(f.done)

	c.mu.Lock()
	delete(c.flights, key)
	var stored bool
	var evicted []Key
	if err == nil {
		stored, evicted = c.insertLocked(key, f.entry)
	}
	sink := c.sink
	c.mu.Unlock()
	if err == nil {
		notifySink(sink, key, f.entry, stored, evicted)
	}
	return entry, err
}

// Dumped pairs one resident entry with its key, as returned by Dump.
type Dumped struct {
	Key   Key
	Entry *Entry
}

// Dump snapshots the resident entries coldest-first, so replaying the
// dump through Load reconstructs the same LRU order (each Load pushes to
// the front; the last — hottest — entry ends up most recently used). The
// returned entries are the cache's own immutable copies: read-only, safe
// to serialize without further locking.
func (c *Cache) Dump() []Dumped {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Dumped, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		item := el.Value.(*cacheItem)
		out = append(out, Dumped{Key: item.key, Entry: item.entry})
	}
	return out
}

// Load replays one persisted entry into the cache, subject to the same
// stamp validation and budgets as a live insert, and reports whether it
// was admitted. Loads count as neither hits nor misses and do not fire
// StoreEntry (warm-loaded state is not echoed back to the store it came
// from), though entries they evict are dropped through the sink as
// usual. The entry is deep-copied; the caller keeps ownership of e.
func (c *Cache) Load(key Key, e *Entry) bool {
	clone := e.clone()
	c.mu.Lock()
	stored, evicted := c.insertLocked(key, clone)
	sink := c.sink
	c.mu.Unlock()
	if sink != nil {
		for _, k := range evicted {
			if k != key {
				sink.DropEntry(k)
			}
		}
	}
	return stored
}
