// Package rescache implements the relation-level result cache: the tier
// above the prompt cache. Where the prompt cache dedups individual model
// calls, this cache stores whole result relations keyed by a canonical
// plan fingerprint plus the runtime's binding epoch, so an identical
// query arriving again costs zero prompts *and* zero planning.
//
// Correctness hinges on invalidation: a cached relation is only valid
// for the binding/statistics state it was computed under. The runtime
// owns a monotonically increasing epoch, bumped by every operation that
// can change what a query would observe (BindLLMTable, AttachDB,
// PrimeTableKeys); the epoch is part of every cache key, so an entry
// populated before a bump can never satisfy a lookup issued after it.
// Stale epochs are additionally evicted eagerly so they do not occupy
// LRU capacity waiting to age out.
//
// A singleflight layer collapses K concurrent identical queries into one
// execution: one leader runs the plan, the other K-1 block on its flight
// and share the relation. Errors are never cached, and a joiner whose
// leader failed retries rather than inheriting the failure (the leader's
// error may be its own cancellation).
package rescache

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"repro/internal/schema"
)

// DefaultSize is the fallback capacity (in relations) of a cache built
// with size 0. Relations are far heavier than single completions, so the
// default is much smaller than the prompt cache's.
const DefaultSize = 256

// Key identifies one cacheable query result.
type Key struct {
	// Fingerprint is the canonical serialization of the built logical
	// plan (literals kept, table bindings folded in) prefixed with every
	// session option that can change the result — see
	// core.Session's result fingerprint.
	Fingerprint string
	// Epoch is the runtime's binding epoch at lookup time. Rebinding a
	// table, attaching a store, or priming statistics bumps it, so
	// entries populated under an older epoch are unreachable.
	Epoch uint64
}

// Entry is one cached query result.
type Entry struct {
	// Rel is the result relation. The cache stores a private deep copy
	// and hands out deep copies, so callers may mutate what they receive.
	Rel *schema.Relation
	// Plan is the EXPLAIN rendering of the plan the populating run
	// executed, served on hits so ?plan=1 responses stay meaningful.
	Plan string
}

// clone deep-copies an entry so cache-resident relations never alias
// caller-visible ones.
func (e *Entry) clone() *Entry {
	return &Entry{Rel: e.Rel.Clone(), Plan: e.Plan}
}

// Stats is a snapshot of a cache's lifetime counters.
type Stats struct {
	Hits    int // served from memory or from a concurrent in-flight execution
	Misses  int // required a full plan + execution
	Entries int // relations currently resident
}

// flight is one in-flight execution shared by every concurrent caller of
// the same key; done is closed once entry/err are set.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// cacheItem is one resident result, stored inside the LRU list.
type cacheItem struct {
	key   Key
	entry *Entry
}

// Cache is a concurrency-safe LRU of result relations with epoch-aware
// keys and a singleflight layer. A runtime shares one Cache across all
// its sessions.
type Cache struct {
	mu       sync.Mutex
	capacity int
	// minEpoch is the newest epoch EvictEpochsBelow has seen: entries
	// below it are gone and late inserts below it are dropped, so an
	// execution that straddled a bump cannot resurrect a stale epoch.
	minEpoch uint64
	entries  map[Key]*list.Element
	order    *list.List // front = most recently used
	flights  map[Key]*flight
	hits     int
	misses   int
}

// New builds a cache retaining at most capacity relations (0 or negative
// means DefaultSize).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultSize
	}
	return &Cache{
		capacity: capacity,
		entries:  map[Key]*list.Element{},
		order:    list.New(),
		flights:  map[Key]*flight{},
	}
}

// Len reports the number of resident relations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the lifetime counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Entries: c.order.Len()}
}

// EvictEpochsBelow drops every entry whose key epoch is below epoch and
// refuses future inserts below it. The runtime calls this on every epoch
// bump so invalidated relations free their memory immediately instead of
// aging out of the LRU.
func (c *Cache) EvictEpochsBelow(epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch > c.minEpoch {
		c.minEpoch = epoch
	}
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if item := el.Value.(*cacheItem); item.key.Epoch < c.minEpoch {
			c.order.Remove(el)
			delete(c.entries, item.key)
		}
		el = next
	}
}

// insertLocked stores an entry (already cloned by the caller), evicting
// the least recently used item when over capacity. Inserts under an
// evicted epoch are dropped.
func (c *Cache) insertLocked(key Key, entry *Entry) {
	if key.Epoch < c.minEpoch {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).entry = entry
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheItem{key: key, entry: entry})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheItem).key)
	}
}

// Fetch returns the result for key: from the cache when resident, from a
// concurrent identical in-flight execution when one exists, otherwise by
// invoking compute and storing its result. The returned bool reports
// whether the result came from the cache or a shared flight — false
// means this caller executed the query itself (and received compute's
// own return value; hits and joiners receive a private deep copy).
func (c *Cache) Fetch(ctx context.Context, key Key, compute func() (*Entry, error)) (*Entry, bool, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			c.hits++
			entry := el.Value.(*cacheItem).entry
			c.mu.Unlock()
			return entry.clone(), true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				return f.entry.clone(), true, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
			continue // leader failed; next round joins a fresh flight or leads
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.misses++
		c.mu.Unlock()

		entry, err := c.lead(f, key, compute)
		return entry, false, err
	}
}

// lead executes compute as the leader of flight f and settles the
// flight no matter what: even when compute panics (an HTTP server
// recovers handler panics and keeps running), joiners must see the
// flight resolve with an error and retry rather than block forever on a
// poisoned key. The panic itself propagates to the leader's caller.
func (c *Cache) lead(f *flight, key Key, compute func() (*Entry, error)) (entry *Entry, err error) {
	settled := false
	defer func() {
		if settled {
			return
		}
		f.err = errors.New("rescache: leader panicked")
		close(f.done)
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
	}()

	entry, err = compute()
	if err == nil {
		// The flight and the cache keep a private copy; the leader's
		// relation stays its own.
		f.entry = entry.clone()
	}
	f.err = err
	settled = true
	close(f.done)

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		c.insertLocked(key, f.entry)
	}
	c.mu.Unlock()
	return entry, err
}
