package optimizer

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/sql/ast"
)

// Typical prompt/completion token sizes per prompt kind, matching what
// prompt.Builder generates against the benchmark schema. They only feed
// the latency axis of the cost model; prompt counts are exact functions
// of the estimated cardinalities.
const (
	listPromptTokens, listAnswerTokens     = 60, 40
	attrPromptTokens, attrAnswerTokens     = 30, 4
	filterPromptTokens, filterAnswerTokens = 30, 1
)

// BackendPrice carries the planner-visible coefficients of the backend
// one operator role routes to: CostWeight scales the money axis (cheap
// models price their prompts below 1), SpeedFactor scales the per-prompt
// unit latency (slower models stretch the makespan).
type BackendPrice struct {
	Backend     string
	CostWeight  float64
	SpeedFactor float64
}

// CostParams fix the execution environment the estimate assumes.
type CostParams struct {
	// Workers is the per-endpoint prompt concurrency budget.
	Workers int
	// Verifier doubles every attribute fetch with a second-model prompt
	// (on its own endpoint, so it adds work but overlaps in time).
	Verifier bool
	// Price resolves the backend an operator role's prompts route to for
	// a given base table ("" when the role has no table binding) together
	// with its pricing coefficients. Nil means a single unpriced backend:
	// Cost degenerates to Prompts and estimates carry no routes.
	Price func(role llm.Role, table string) BackendPrice
}

// NodeEstimate is the planner's prediction for one operator.
type NodeEstimate struct {
	// Rows is the estimated output cardinality.
	Rows float64
	// Prompts is the estimated number of prompts this operator itself
	// issues (including verification prompts).
	Prompts float64
	// Start is when the operator's first output row becomes available
	// on the simulated-latency axis — streaming operators overlap with
	// their consumers from here on.
	Start time.Duration
	// Done is when the last output row becomes available (the
	// critical-path component of the makespan).
	Done time.Duration
	// Backend names the model backend this operator's prompts route to;
	// empty when the estimate ran unpriced (single-backend runtime).
	Backend string
}

// PlanCost is the full cost prediction for one candidate plan.
type PlanCost struct {
	// Prompts is the estimated total number of prompts the plan issues.
	Prompts float64
	// Cost is the backend-weighted prompt total: each operator's prompts
	// times the cost weight of the backend they route to. Equal to
	// Prompts when the estimate ran unpriced, so the planner's order is
	// unchanged for single-backend runtimes.
	Cost float64
	// Priced reports whether per-backend coefficients entered the
	// estimate (a routing-configured runtime supplied CostParams.Price).
	Priced bool
	// Latency is the estimated makespan: the larger of the critical
	// dependency path and the busiest endpoint's work spread over its
	// worker budget.
	Latency time.Duration
	// Candidates is the number of plans the cost-based optimizer
	// compared (1 when the plan was estimated without enumeration).
	Candidates int
	// Choice describes the knobs of the chosen candidate ("paper" for
	// the fixed-heuristic shape).
	Choice string
	// Nodes holds the per-operator estimates for EXPLAIN annotation.
	Nodes map[logical.Node]NodeEstimate
}

// estimator walks one plan accumulating totals.
type estimator struct {
	st       *Statistics
	p        CostParams
	bindings map[string]scanInfo // lower(binding) → table info
	out      *PlanCost
	// workBy accumulates prompt work per endpoint: each backend runs its
	// own worker pool, so areas bound the makespan independently. The
	// unpriced estimate uses the "" key for the primary endpoint and a
	// reserved key for the verifier (its prompts overlap on a second
	// endpoint), reproducing the single-backend model exactly.
	workBy map[string]time.Duration
}

// verifierEndpoint keys the unpriced verifier's work area; the NUL byte
// keeps it from colliding with any declarable backend name.
const verifierEndpoint = "\x00verifier"

// Estimate predicts the prompt count and makespan of a lowered plan
// using the given statistics. It never fails: unresolvable expressions
// fall back to generic selectivities.
func Estimate(n logical.Node, st *Statistics, p CostParams) *PlanCost {
	if p.Workers <= 0 {
		p.Workers = llm.DefaultBatchWorkers
	}
	e := &estimator{
		st:       st,
		p:        p,
		bindings: map[string]scanInfo{},
		out:      &PlanCost{Candidates: 1, Choice: "estimate", Priced: p.Price != nil, Nodes: map[logical.Node]NodeEstimate{}},
		workBy:   map[string]time.Duration{},
	}
	var collect func(logical.Node)
	collect = func(n logical.Node) {
		if s, ok := n.(*logical.Scan); ok {
			e.bindings[strings.ToLower(s.Binding)] = scanInfo{def: s.Table, source: s.Source}
		}
		for _, c := range n.Children() {
			collect(c)
		}
	}
	collect(n)

	root := e.node(n)
	e.out.Latency = root.Done
	for _, work := range e.workBy {
		if area := work / time.Duration(p.Workers); area > e.out.Latency {
			e.out.Latency = area
		}
	}
	return e.out
}

// price resolves the backend and coefficients for one operator role. The
// unpriced estimate (no Price hook) yields neutral coefficients and no
// backend attribution.
func (e *estimator) price(role llm.Role, table string) BackendPrice {
	if e.p.Price == nil {
		return BackendPrice{CostWeight: 1, SpeedFactor: 1}
	}
	bp := e.p.Price(role, table)
	if bp.CostWeight <= 0 {
		bp.CostWeight = 1
	}
	if bp.SpeedFactor <= 0 {
		bp.SpeedFactor = 1
	}
	return bp
}

// unit stretches a prompt's base latency by the backend's speed factor.
func (bp BackendPrice) unit(base time.Duration) time.Duration {
	if bp.SpeedFactor == 1 {
		return base
	}
	return time.Duration(float64(base) * bp.SpeedFactor)
}

// waves is the batched-latency estimate of issuing n prompts of the given
// unit latency over the worker budget.
func (e *estimator) waves(n float64, unit time.Duration) time.Duration {
	if n <= 0 {
		return 0
	}
	w := n / float64(e.p.Workers)
	if f := float64(int(w)); f < w {
		w = f + 1
	}
	return time.Duration(w) * unit
}

// tableOf resolves the base table a column reference belongs to. Like
// bindingOf, an unqualified name matching columns of several tables is
// ambiguous and resolves to "" (generic selectivity) — never to
// whichever binding map iteration happened to visit first.
func (e *estimator) tableOf(ref *ast.ColumnRef) string {
	if ref.Table != "" {
		if info, ok := e.bindings[strings.ToLower(ref.Table)]; ok {
			return info.def.Name
		}
		return ref.Table
	}
	found := ""
	for _, info := range e.bindings {
		for _, c := range info.def.Schema.Columns {
			if strings.EqualFold(c.Name, ref.Name) {
				if found != "" && !strings.EqualFold(found, info.def.Name) {
					return "" // ambiguous across tables
				}
				found = info.def.Name
			}
		}
	}
	return found
}

// conjunctSelectivity estimates one conjunct, resolving its column to a
// table when possible.
func (e *estimator) conjunctSelectivity(c ast.Expr) float64 {
	if attr, op, lit, ok := simpleConjunct(c); ok {
		table := ""
		if bin, isBin := c.(*ast.Binary); isBin {
			if ref, isRef := bin.Left.(*ast.ColumnRef); isRef {
				table = e.tableOf(ref)
			} else if ref, isRef := bin.Right.(*ast.ColumnRef); isRef {
				table = e.tableOf(ref)
			}
		}
		return e.st.Selectivity(table, attr, op, lit)
	}
	return 0.5
}

func (e *estimator) record(n logical.Node, est NodeEstimate) NodeEstimate {
	e.out.Nodes[n] = est
	e.out.Prompts += est.Prompts
	return est
}

var (
	listLat   = llm.EstimateLatency(listPromptTokens, listAnswerTokens)
	attrLat   = llm.EstimateLatency(attrPromptTokens, attrAnswerTokens)
	filterLat = llm.EstimateLatency(filterPromptTokens, filterAnswerTokens)
)

// promptStage models one streaming per-tuple prompt operator: the first
// output row lands one prompt latency after the first input row, the
// last no earlier than one prompt latency after the last input row and
// no earlier than the stage's own waves from its first input (whichever
// dominates — dependency chain vs stage throughput).
func promptStage(in NodeEstimate, unit time.Duration, waves time.Duration) (start, done time.Duration) {
	start = in.Start + unit
	done = in.Done + unit
	if t := in.Start + waves; t > done {
		done = t
	}
	return start, done
}

func (e *estimator) node(n logical.Node) NodeEstimate {
	switch node := n.(type) {
	case *logical.Scan:
		if node.Source != "LLM" {
			rows := e.st.Table(node.Table.Name).Keys
			return e.record(n, NodeEstimate{Rows: rows})
		}
		ts := e.st.Table(node.Table.Name)
		rows := ts.Keys
		if node.PushedFilter != nil {
			for _, c := range SplitConjuncts(node.PushedFilter) {
				rows *= e.conjunctSelectivity(c)
			}
		}
		pages := ts.ScanPrompts(rows)
		// The page chain is sequential: each "more results" prompt
		// excludes everything already seen. The first page's keys stream
		// downstream while later pages are still being fetched.
		bp := e.price(llm.RoleKeyscan, node.Table.Name)
		unit := bp.unit(listLat)
		done := time.Duration(pages) * unit
		e.workBy[bp.Backend] += done
		e.out.Cost += pages * bp.CostWeight
		return e.record(n, NodeEstimate{Rows: rows, Prompts: pages, Start: unit, Done: done, Backend: bp.Backend})

	case *logical.CachedScan:
		// A residual plan's leaf: the relation is already resident in
		// the result cache — zero prompts, zero latency, exact rows.
		return e.record(n, NodeEstimate{Rows: float64(node.Rows)})

	case *logical.FetchAttr:
		in := e.node(node.Input)
		prompts := in.Rows
		bp := e.price(llm.RoleFetch, node.Table.Name)
		unit := bp.unit(attrLat)
		start, done := promptStage(in, unit, e.waves(in.Rows, unit))
		e.workBy[bp.Backend] += time.Duration(in.Rows * float64(unit))
		e.out.Cost += in.Rows * bp.CostWeight
		if e.p.Verifier {
			prompts *= 2
			vbp := e.price(llm.RoleVerify, node.Table.Name)
			vkey := verifierEndpoint
			if e.p.Price != nil {
				vkey = vbp.Backend
			}
			e.workBy[vkey] += time.Duration(in.Rows * float64(vbp.unit(attrLat)))
			e.out.Cost += in.Rows * vbp.CostWeight
		}
		return e.record(n, NodeEstimate{Rows: in.Rows, Prompts: prompts, Start: start, Done: done, Backend: bp.Backend})

	case *logical.LLMFilter:
		in := e.node(node.Input)
		sel := e.conjunctSelectivity(node.Cond)
		bp := e.price(llm.RoleFilter, node.Table.Name)
		unit := bp.unit(filterLat)
		start, done := promptStage(in, unit, e.waves(in.Rows, unit))
		e.workBy[bp.Backend] += time.Duration(in.Rows * float64(unit))
		e.out.Cost += in.Rows * bp.CostWeight
		return e.record(n, NodeEstimate{Rows: in.Rows * sel, Prompts: in.Rows, Start: start, Done: done, Backend: bp.Backend})

	case *logical.Filter:
		in := e.node(node.Input)
		rows := in.Rows
		for _, c := range SplitConjuncts(node.Cond) {
			rows *= e.conjunctSelectivity(c)
		}
		return e.record(n, NodeEstimate{Rows: rows, Start: in.Start, Done: in.Done})

	case *logical.Join:
		l := e.node(node.Left)
		r := e.node(node.Right)
		// Hash join: the right side is the build side and must drain
		// completely before the first probe row can emerge, while left
		// rows stream through as they arrive. This is what makes join
		// input order matter on the latency axis: putting the slower
		// side on the probe (left) overlaps its production with
		// downstream prompt work.
		start := r.Done
		if l.Start > start {
			start = l.Start
		}
		done := r.Done
		if l.Done > done {
			done = l.Done
		}
		var rows float64
		if node.On == nil {
			rows = l.Rows * r.Rows
		} else {
			// Equi-joins in this engine follow key references, so the
			// smaller (usually filtered) side bounds the output.
			rows = l.Rows
			if r.Rows < rows {
				rows = r.Rows
			}
		}
		return e.record(n, NodeEstimate{Rows: rows, Start: start, Done: done})

	case *logical.Aggregate:
		in := e.node(node.Input)
		rows := 1.0
		if len(node.GroupBy) > 0 {
			// Grouping compresses; assume a third of the input forms
			// distinct groups.
			rows = in.Rows / 3
			if rows < 1 {
				rows = 1
			}
		}
		// Blocking: nothing flows until the whole input has been seen.
		return e.record(n, NodeEstimate{Rows: rows, Start: in.Done, Done: in.Done})

	case *logical.Sort:
		in := e.node(node.Input)
		return e.record(n, NodeEstimate{Rows: in.Rows, Start: in.Done, Done: in.Done})

	case *logical.Distinct:
		in := e.node(node.Input)
		return e.record(n, NodeEstimate{Rows: in.Rows * 0.8, Start: in.Start, Done: in.Done})

	case *logical.Limit:
		in := e.node(node.Input)
		rows := in.Rows
		if node.N >= 0 && float64(node.N) < rows {
			rows = float64(node.N)
		}
		return e.record(n, NodeEstimate{Rows: rows, Start: in.Start, Done: in.Done})

	default:
		// Project, StripProject and anything prompt-free with one
		// input: cardinality and timing pass through.
		children := n.Children()
		if len(children) == 1 {
			in := e.node(children[0])
			return e.record(n, NodeEstimate{Rows: in.Rows, Start: in.Start, Done: in.Done})
		}
		return e.record(n, NodeEstimate{})
	}
}

// String renders the headline numbers. The weighted cost appears only
// when backend pricing entered the estimate.
func (c *PlanCost) String() string {
	if c.Priced {
		return fmt.Sprintf("prompts=%.1f cost=%.1f latency=%s candidates=%d",
			c.Prompts, c.Cost, c.Latency.Round(time.Millisecond), c.Candidates)
	}
	return fmt.Sprintf("prompts=%.1f latency=%s candidates=%d",
		c.Prompts, c.Latency.Round(time.Millisecond), c.Candidates)
}
