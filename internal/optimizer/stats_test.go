package optimizer

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/logical"
	"repro/internal/sql/parser"
)

// TestObservedEmptyTableStaysEmpty pins the observed-empty fix: a scan
// that materialized zero keys must not be re-defaulted to
// DefaultTableKeys, and the cost model must price the next scan of that
// table at the single terminal list prompt.
func TestObservedEmptyTableStaysEmpty(t *testing.T) {
	st := NewStatistics()
	st.ObserveScan("city", 0, 1)

	ts := st.Table("city")
	if !ts.Seen {
		t.Fatalf("observed table not marked seen: %+v", ts)
	}
	if ts.Keys != 0 {
		t.Fatalf("observed-empty table re-defaulted: Keys = %v, want 0", ts.Keys)
	}

	sel, err := parser.ParseSelect("SELECT name FROM city")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := logical.Build(sel, resolver{})
	if err != nil {
		t.Fatal(err)
	}
	cost := Estimate(plan, st, CostParams{})
	if cost.Prompts != 1 {
		t.Errorf("known-empty scan priced at %v prompts, want 1", cost.Prompts)
	}

	// An unobserved table still falls back to the default cardinality.
	if got := st.Table("mayor").Keys; got != DefaultTableKeys {
		t.Errorf("unobserved table Keys = %v, want default %v", got, DefaultTableKeys)
	}
}

// TestObserveScanRecoversFromEmpty checks the EMA still adapts once a
// previously-empty table grows rows.
func TestObserveScanRecoversFromEmpty(t *testing.T) {
	st := NewStatistics()
	st.ObserveScan("city", 0, 1)
	st.ObserveScan("city", 10, 2)
	if got := st.Table("city").Keys; got != 5 {
		t.Errorf("Keys after 0 then 10 = %v, want EMA 5", got)
	}
}

// TestSnapshotRestoreRoundTrip exercises the persistence serialization:
// a snapshot survives JSON and restores into a fresh store, and restore
// never clobbers entries the live store already learned.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := NewStatistics()
	src.SetTableKeys("city", 137)
	src.ObserveScan("mayor", 0, 1)
	src.ObserveFilter("city", "population", ">", "1000000", 100, 40)

	raw, err := json.Marshal(src.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}

	dst := NewStatistics()
	dst.Restore(snap)
	if !reflect.DeepEqual(dst.Snapshot(), src.Snapshot()) {
		t.Errorf("restored snapshot differs:\n got %+v\nwant %+v", dst.Snapshot(), src.Snapshot())
	}
	if got := dst.Table("mayor"); !got.Seen || got.Keys != 0 {
		t.Errorf("observed-empty table lost across restore: %+v", got)
	}
	if got := dst.Selectivity("city", "population", ">", "1000000"); got != 0.4 {
		t.Errorf("restored selectivity = %v, want 0.4", got)
	}

	// Live observations win over the snapshot.
	live := NewStatistics()
	live.SetTableKeys("city", 9)
	live.Restore(snap)
	if got := live.Table("city").Keys; got != 9 {
		t.Errorf("restore clobbered live stats: Keys = %v, want 9", got)
	}
	if got := live.Table("mayor").Keys; got != 0 {
		t.Errorf("restore did not fill gap: mayor Keys = %v, want 0", got)
	}
}
