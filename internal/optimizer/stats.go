package optimizer

import (
	"strings"
	"sync"

	"repro/internal/sql/ast"
)

// Default statistics. Prompts are the dominant cost, so the defaults only
// need to rank plans sensibly before any observation has refined them:
// equality predicates are assumed selective, inequalities permissive,
// range comparisons in between.
const (
	// DefaultTableKeys is the assumed key cardinality of a relation the
	// planner has never scanned (and that was never primed via ANALYZE).
	DefaultTableKeys = 24
	// DefaultPageSize is the assumed number of keys one list prompt
	// returns before the "more results" iteration must continue.
	DefaultPageSize = 12
)

// defaultSelectivity maps a comparison operator to the fraction of tuples
// assumed to pass when nothing has been observed about the predicate.
func defaultSelectivity(op string) float64 {
	switch op {
	case "=":
		return 0.2
	case "!=":
		return 0.8
	default: // < <= > >=
		return 0.45
	}
}

// TableStats describes one base relation as the planner sees it.
type TableStats struct {
	// Keys is the estimated number of keys an LLM key scan materializes.
	Keys float64 `json:"keys"`
	// PageSize is the estimated number of keys per list page; the scan
	// issues ceil(Keys/PageSize)+1 prompts (the +1 is the terminal
	// "no more results" page).
	PageSize float64 `json:"page_size"`
	// Seen reports whether the table was ever observed (a scan fed back
	// through ObserveScan) or primed (SetTableKeys). It distinguishes a
	// known-empty table — Seen with Keys == 0, priced at one terminal
	// list prompt — from a never-observed one, which falls back to
	// DefaultTableKeys. Without it an observed Keys == 0 would read as
	// "unknown" and be re-defaulted to 24 forever.
	Seen bool `json:"seen,omitempty"`
}

// ScanPrompts estimates the number of list prompts a key scan over rows
// tuples issues.
func (t TableStats) ScanPrompts(rows float64) float64 {
	page := t.PageSize
	if page <= 0 {
		page = DefaultPageSize
	}
	if rows <= 0 {
		return 1
	}
	pages := rows / page
	if p := float64(int(pages)); p < pages {
		pages = p + 1
	}
	return pages + 1
}

// selObs is one running selectivity estimate.
type selObs struct {
	sum   float64
	count float64
}

// Statistics hold what the cost model knows about the data behind the
// schema: per-table key cardinalities and page sizes, plus predicate
// selectivities. All values start from generic defaults and are refined
// by Observe* calls after each executed query (the prompt counters of
// prior runs), or primed explicitly via SetTableKeys — the engine's
// ANALYZE equivalent. Safe for concurrent use.
type Statistics struct {
	mu     sync.Mutex
	tables map[string]TableStats
	sels   map[string]selObs
}

// NewStatistics returns an empty statistics store (all defaults).
func NewStatistics() *Statistics {
	return &Statistics{tables: map[string]TableStats{}, sels: map[string]selObs{}}
}

// SetTableKeys primes the key cardinality of one table, like ANALYZE
// against a ground-truth store.
func (s *Statistics) SetTableKeys(table string, keys int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tables[strings.ToLower(table)]
	t.Keys = float64(keys)
	t.Seen = true
	if t.PageSize == 0 {
		t.PageSize = DefaultPageSize
	}
	s.tables[strings.ToLower(table)] = t
}

// Table returns the stats of one table, falling back to defaults.
func (s *Statistics) Table(table string) TableStats {
	if s == nil {
		return TableStats{Keys: DefaultTableKeys, PageSize: DefaultPageSize}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tables[strings.ToLower(table)]
	// Only a genuinely unobserved table gets the default cardinality: an
	// observed-empty one (Seen, Keys == 0) keeps its zero, so the cost
	// model prices its scan at the single terminal list prompt.
	if !t.Seen && t.Keys <= 0 {
		t.Keys = DefaultTableKeys
	}
	if t.PageSize <= 0 {
		t.PageSize = DefaultPageSize
	}
	return t
}

// selKey builds the lookup keys for one predicate: the exact literal form
// and the (table, attr, op) family.
func selKey(table, attr, op, lit string) (exact, family string) {
	family = strings.ToLower(table) + "|" + strings.ToLower(attr) + "|" + op
	return family + "|" + strings.ToLower(lit), family
}

// Selectivity estimates the fraction of a table's tuples passing
// `attr op lit`, preferring an exact prior observation, then the
// attribute/operator family, then the operator default.
func (s *Statistics) Selectivity(table, attr, op, lit string) float64 {
	if s == nil {
		return defaultSelectivity(op)
	}
	exact, family := selKey(table, attr, op, lit)
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.sels[exact]; ok && o.count > 0 {
		return o.sum / o.count
	}
	if o, ok := s.sels[family]; ok && o.count > 0 {
		return o.sum / o.count
	}
	return defaultSelectivity(op)
}

// SelectivityOf estimates the selectivity of an arbitrary conjunct over
// the named table: column-op-literal forms consult the store, anything
// else gets a generic 0.5.
func (s *Statistics) SelectivityOf(table string, e ast.Expr) float64 {
	if attr, op, lit, ok := simpleConjunct(e); ok {
		return s.Selectivity(table, attr, op, lit)
	}
	return 0.5
}

// ObserveScan feeds back one executed key scan: the number of keys it
// materialized and the number of list prompts it issued.
func (s *Statistics) ObserveScan(table string, keys, pages int) {
	if s == nil || keys < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	name := strings.ToLower(table)
	t := s.tables[name]
	if !t.Seen {
		t.Keys = float64(keys)
	} else {
		// Exponential moving average: adapt, but do not thrash on one
		// filtered scan.
		t.Keys = 0.5*t.Keys + 0.5*float64(keys)
	}
	t.Seen = true
	if pages > 1 && keys > 0 {
		obs := float64(keys) / float64(pages-1)
		if t.PageSize <= 0 {
			t.PageSize = obs
		} else {
			t.PageSize = 0.5*t.PageSize + 0.5*obs
		}
	}
	s.tables[name] = t
}

// SelectivityObservation is the serialized form of one running
// selectivity estimate.
type SelectivityObservation struct {
	Sum   float64 `json:"sum"`
	Count float64 `json:"count"`
}

// StatsSnapshot is a point-in-time, serializable copy of everything the
// statistics store has learned. It is the unit of persistence for
// warm-starting the planner across restarts.
type StatsSnapshot struct {
	Tables        map[string]TableStats             `json:"tables,omitempty"`
	Selectivities map[string]SelectivityObservation `json:"selectivities,omitempty"`
}

// Snapshot copies the current learned state out of the store.
func (s *Statistics) Snapshot() StatsSnapshot {
	var snap StatsSnapshot
	if s == nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tables) > 0 {
		snap.Tables = make(map[string]TableStats, len(s.tables))
		for k, v := range s.tables {
			snap.Tables[k] = v
		}
	}
	if len(s.sels) > 0 {
		snap.Selectivities = make(map[string]SelectivityObservation, len(s.sels))
		for k, v := range s.sels {
			snap.Selectivities[k] = SelectivityObservation{Sum: v.sum, Count: v.count}
		}
	}
	return snap
}

// Restore merges a snapshot into the store. Entries already learned in
// this process win — the snapshot only fills gaps — so a restore after
// live traffic never clobbers fresher observations with stale ones.
func (s *Statistics) Restore(snap StatsSnapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range snap.Tables {
		if _, ok := s.tables[k]; !ok {
			s.tables[k] = v
		}
	}
	for k, v := range snap.Selectivities {
		if _, ok := s.sels[k]; !ok && v.Count > 0 {
			s.sels[k] = selObs{sum: v.Sum, count: v.Count}
		}
	}
}

// ObserveFilter feeds back one executed predicate: in tuples entered, out
// passed. Both the exact-literal key and the attribute/operator family
// accumulate.
func (s *Statistics) ObserveFilter(table, attr, op, lit string, in, out int) {
	if s == nil || in <= 0 || out < 0 {
		return
	}
	sel := float64(out) / float64(in)
	exact, family := selKey(table, attr, op, lit)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range []string{exact, family} {
		o := s.sels[k]
		o.sum += sel
		o.count++
		s.sels[k] = o
	}
}

// simpleConjunct deconstructs a column-op-literal comparison (either
// orientation), returning the normalized attribute, operator and literal
// text.
func simpleConjunct(e ast.Expr) (attr, op, lit string, ok bool) {
	bin, isBin := e.(*ast.Binary)
	if !isBin {
		return "", "", "", false
	}
	switch bin.Op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return "", "", "", false
	}
	if ref, okL := bin.Left.(*ast.ColumnRef); okL {
		if l, okR := bin.Right.(*ast.Literal); okR {
			return ref.Name, bin.Op, l.Val.String(), true
		}
	}
	if ref, okR := bin.Right.(*ast.ColumnRef); okR {
		if l, okL := bin.Left.(*ast.Literal); okL {
			return ref.Name, mirrorOp(bin.Op), l.Val.String(), true
		}
	}
	return "", "", "", false
}
