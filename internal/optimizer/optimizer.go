// Package optimizer rewrites logical plans. It implements the classic
// relational rules Galois needs (conjunct splitting, predicate pushdown,
// turning cross products with equality predicates into keyed joins) plus
// the LLM-specific lowering from Section 4 of the paper: injecting
// FetchAttr nodes for attributes the plan touches but the LLM key scan has
// not retrieved, rewriting eligible selections into per-key boolean prompt
// filters, and — optionally — merging selections into the retrieval prompt
// itself (the Section 6 "prompt pushdown" optimization).
package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logical"
	"repro/internal/schema"
	"repro/internal/sql/ast"
)

// Options control which rewrites run.
type Options struct {
	// PushdownPredicates distributes WHERE conjuncts toward the scans and
	// extracts equi-join conditions from cross products. On by default.
	PushdownPredicates bool
	// UseLLMFilter rewrites simple selections on unfetched LLM attributes
	// into per-key boolean prompts instead of fetch-then-filter. On by
	// default, matching the paper's physical operator.
	UseLLMFilter bool
	// PromptPushdown merges simple selections directly into the LLM list
	// prompt ("get names of cities with > 1M population"), removing the
	// per-key prompts entirely. Off by default; Ablation A flips it.
	PromptPushdown bool
	// CostBased enables cost-based plan selection: instead of applying
	// the rewrites above unconditionally, the engine enumerates candidate
	// plans (per-conjunct LLM-filter vs fetch-then-filter, per-conjunct
	// prompt pushdown, join input order, filter order by selectivity) and
	// picks the one whose estimated prompt count — then estimated
	// makespan — is lowest. Consumed by ChooseBest, not by Optimize.
	CostBased bool
	// Stats supply cardinalities and selectivities. When non-nil,
	// Optimize additionally reorders chains of per-key boolean filters
	// most-selective-first (cheapest prompts-per-surviving-tuple order).
	Stats *Statistics

	// Per-candidate knobs set by the enumerator; zero values reproduce
	// the fixed heuristics.

	// DisableLLMFilter lists conjuncts (normalized, lower-cased rendered
	// text) lowered as fetch-then-filter instead of a per-key boolean
	// prompt.
	DisableLLMFilter map[string]bool
	// PromptPushdownSkip lists conjuncts kept out of the retrieval
	// prompt even when PromptPushdown is on.
	PromptPushdownSkip map[string]bool
	// SwapJoins lists preorder join indices whose inputs are exchanged
	// (inner/cross joins only).
	SwapJoins map[int]bool
}

// conjKey normalizes a conjunct for the per-conjunct option maps.
func conjKey(e ast.Expr) string { return strings.ToLower(e.String()) }

// Defaults returns the paper-faithful configuration.
func Defaults() Options {
	return Options{PushdownPredicates: true, UseLLMFilter: true, PromptPushdown: false}
}

// scanInfo records one base relation binding found in the plan.
type scanInfo struct {
	def    *schema.TableDef
	source string
}

// Optimize rewrites the plan under the given options. The input plan is
// not mutated except for Scan.PushedFilter annotations.
func Optimize(n logical.Node, opts Options) (logical.Node, error) {
	o := &optimizer{opts: opts, bindings: map[string]scanInfo{}}
	o.collectBindings(n)
	if opts.PushdownPredicates {
		n = o.push(n, nil)
	}
	if len(opts.SwapJoins) > 0 {
		joinIdx := 0
		n = swapJoins(n, opts.SwapJoins, &joinIdx)
	}
	n, err := o.lower(n)
	if err != nil {
		return nil, err
	}
	if opts.PromptPushdown {
		n = o.promptPushdown(n)
	}
	if opts.Stats != nil {
		n = orderLLMFilters(n, opts.Stats)
	}
	return n, nil
}

// swapJoins exchanges the inputs of the joins whose preorder index is in
// the set. Left outer joins do not commute and are skipped (but still
// counted, so indices stay stable across candidates).
func swapJoins(n logical.Node, swap map[int]bool, idx *int) logical.Node {
	if j, ok := n.(*logical.Join); ok {
		i := *idx
		*idx++
		left := swapJoins(j.Left, swap, idx)
		right := swapJoins(j.Right, swap, idx)
		if swap[i] && j.Type != ast.JoinLeft {
			left, right = right, left
		}
		return logical.NewJoin(left, right, j.Type, j.On)
	}
	children := n.Children()
	if len(children) == 1 {
		if rebuilt, err := rebuildUnary(n, swapJoins(children[0], swap, idx)); err == nil {
			return rebuilt
		}
	}
	return n
}

// orderLLMFilters sorts every maximal chain of consecutive LLMFilter
// nodes most-selective-first: with one boolean prompt per surviving
// tuple, running the filter that discards the most tuples first
// minimizes the prompts the rest of the chain issues.
func orderLLMFilters(n logical.Node, st *Statistics) logical.Node {
	if _, ok := n.(*logical.LLMFilter); ok {
		var chain []*logical.LLMFilter
		cur := n
		for {
			lf, isLF := cur.(*logical.LLMFilter)
			if !isLF {
				break
			}
			chain = append(chain, lf)
			cur = lf.Input
		}
		input := orderLLMFilters(cur, st)
		// chain[0] is the outermost (last to run); rebuild with the
		// most selective filter innermost (first to run).
		sort.SliceStable(chain, func(i, j int) bool {
			si := st.Selectivity(chain[i].Table.Name, chain[i].Cond.Left.(*ast.ColumnRef).Name, chain[i].Cond.Op, chain[i].Cond.Right.(*ast.Literal).Val.String())
			sj := st.Selectivity(chain[j].Table.Name, chain[j].Cond.Left.(*ast.ColumnRef).Name, chain[j].Cond.Op, chain[j].Cond.Right.(*ast.Literal).Val.String())
			// Descending: the outermost slot gets the least selective
			// filter, so the innermost runs first.
			return si > sj
		})
		out := input
		for i := len(chain) - 1; i >= 0; i-- {
			lf := chain[i]
			out = &logical.LLMFilter{Input: out, Table: lf.Table, Binding: lf.Binding, Cond: lf.Cond, KeyCol: lf.KeyCol}
		}
		return out
	}
	switch node := n.(type) {
	case *logical.Join:
		return logical.NewJoin(orderLLMFilters(node.Left, st), orderLLMFilters(node.Right, st), node.Type, node.On)
	default:
		children := n.Children()
		if len(children) == 1 {
			if rebuilt, err := rebuildUnary(n, orderLLMFilters(children[0], st)); err == nil {
				return rebuilt
			}
		}
		return n
	}
}

type optimizer struct {
	opts     Options
	bindings map[string]scanInfo
}

func (o *optimizer) collectBindings(n logical.Node) {
	if s, ok := n.(*logical.Scan); ok {
		o.bindings[strings.ToLower(s.Binding)] = scanInfo{def: s.Table, source: s.Source}
	}
	for _, c := range n.Children() {
		o.collectBindings(c)
	}
}

// bindingOf resolves the binding a column reference belongs to, consulting
// full table definitions (not just fetched columns).
func (o *optimizer) bindingOf(ref *ast.ColumnRef) (string, bool) {
	if ref.Table != "" {
		_, ok := o.bindings[strings.ToLower(ref.Table)]
		return strings.ToLower(ref.Table), ok
	}
	found := ""
	for b, info := range o.bindings {
		for _, c := range info.def.Schema.Columns {
			if strings.EqualFold(c.Name, ref.Name) {
				if found != "" && found != b {
					return "", false // ambiguous
				}
				found = b
			}
		}
	}
	return found, found != ""
}

// subtreeBindings returns the set of bindings produced under n.
func subtreeBindings(n logical.Node) map[string]bool {
	out := map[string]bool{}
	var walk func(logical.Node)
	walk = func(n logical.Node) {
		if s, ok := n.(*logical.Scan); ok {
			out[strings.ToLower(s.Binding)] = true
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// coveredBy reports whether every column reference in e belongs to one of
// the given bindings.
func (o *optimizer) coveredBy(e ast.Expr, bindings map[string]bool) bool {
	ok := true
	ast.Walk(e, func(x ast.Expr) bool {
		if ref, isRef := x.(*ast.ColumnRef); isRef {
			b, found := o.bindingOf(ref)
			if !found || !bindings[b] {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// SplitConjuncts flattens a predicate into its AND-ed conjuncts.
func SplitConjuncts(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.Binary); ok && b.Op == "AND" {
		return append(SplitConjuncts(b.Left), SplitConjuncts(b.Right)...)
	}
	return []ast.Expr{e}
}

// joinConjuncts re-ANDs a conjunct list (nil for empty).
func joinConjuncts(cs []ast.Expr) ast.Expr {
	if len(cs) == 0 {
		return nil
	}
	e := cs[0]
	for _, c := range cs[1:] {
		e = &ast.Binary{Op: "AND", Left: e, Right: c}
	}
	return e
}

// push distributes pending conjuncts down the tree.
func (o *optimizer) push(n logical.Node, pending []ast.Expr) logical.Node {
	switch node := n.(type) {
	case *logical.Filter:
		return o.push(node.Input, append(pending, SplitConjuncts(node.Cond)...))

	case *logical.Join:
		leftB := subtreeBindings(node.Left)
		rightB := subtreeBindings(node.Right)
		var toLeft, toRight, toJoin, stay []ast.Expr
		conjs := pending
		if node.On != nil {
			conjs = append(conjs, SplitConjuncts(node.On)...)
		}
		for _, c := range conjs {
			switch {
			case o.coveredBy(c, leftB):
				toLeft = append(toLeft, c)
			case o.coveredBy(c, rightB):
				toRight = append(toRight, c)
			case isEquiAcross(c, o, leftB, rightB):
				toJoin = append(toJoin, c)
			default:
				stay = append(stay, c)
			}
		}
		left := o.push(node.Left, toLeft)
		right := o.push(node.Right, toRight)
		jt := node.Type
		if jt == ast.JoinCross && len(toJoin) > 0 {
			jt = ast.JoinInner
		}
		var out logical.Node = logical.NewJoin(left, right, jt, joinConjuncts(toJoin))
		if rest := joinConjuncts(stay); rest != nil {
			out = &logical.Filter{Input: out, Cond: rest}
		}
		return out

	case *logical.Scan:
		if rest := joinConjuncts(pending); rest != nil {
			return &logical.Filter{Input: node, Cond: rest}
		}
		return node

	default:
		// Do not push through projections/aggregates; reattach pending
		// above and continue independently below.
		children := n.Children()
		if len(children) == 1 {
			rebuilt, err := rebuildUnary(n, o.push(children[0], nil))
			if err == nil {
				n = rebuilt
			}
		}
		if rest := joinConjuncts(pending); rest != nil {
			return &logical.Filter{Input: n, Cond: rest}
		}
		return n
	}
}

// isEquiAcross reports whether c is colA = colB with the columns on
// opposite sides of the join.
func isEquiAcross(c ast.Expr, o *optimizer, leftB, rightB map[string]bool) bool {
	b, ok := c.(*ast.Binary)
	if !ok || b.Op != "=" {
		return false
	}
	lr, lok := b.Left.(*ast.ColumnRef)
	rr, rok := b.Right.(*ast.ColumnRef)
	if !lok || !rok {
		return false
	}
	lb, lf := o.bindingOf(lr)
	rb, rf := o.bindingOf(rr)
	if !lf || !rf {
		return false
	}
	return (leftB[lb] && rightB[rb]) || (leftB[rb] && rightB[lb])
}

// rebuildUnary reconstructs a single-input node over a new input,
// refreshing derived schemas.
func rebuildUnary(n logical.Node, input logical.Node) (logical.Node, error) {
	switch node := n.(type) {
	case *logical.Filter:
		return &logical.Filter{Input: input, Cond: node.Cond}, nil
	case *logical.Project:
		// Types were inferred at build time against the full declared
		// schema; re-deriving them against a pre-lowering input (which
		// may hold only key columns) would fail, so rewire in place.
		node.Input = input
		return node, nil
	case *logical.Aggregate:
		node.Input = input
		return node, nil
	case *logical.Sort:
		return &logical.Sort{Input: input, Items: node.Items}, nil
	case *logical.Limit:
		return &logical.Limit{Input: input, N: node.N, Offset: node.Offset}, nil
	case *logical.Distinct:
		return &logical.Distinct{Input: input, KeyCols: node.KeyCols}, nil
	case *logical.StripProject:
		return logical.NewStripProject(input, node.Keep), nil
	case *logical.FetchAttr:
		return logical.NewFetchAttr(input, node.Table, node.Binding, node.Attr, node.KeyCol)
	case *logical.LLMFilter:
		return &logical.LLMFilter{Input: input, Table: node.Table, Binding: node.Binding, Cond: node.Cond, KeyCol: node.KeyCol}, nil
	default:
		return nil, fmt.Errorf("optimizer: cannot rebuild %T", n)
	}
}

// ------------------------------------------------------------- lowering

// lower injects FetchAttr and LLMFilter nodes so that every expression in
// the plan only references materialized columns.
func (o *optimizer) lower(n logical.Node) (logical.Node, error) {
	switch node := n.(type) {
	case *logical.Scan:
		return node, nil

	case *logical.Filter:
		input, err := o.lower(node.Input)
		if err != nil {
			return nil, err
		}
		var llmFilters []*ast.Binary
		var rest []ast.Expr
		for _, c := range SplitConjuncts(node.Cond) {
			if o.opts.UseLLMFilter {
				if bin, binding, ok := o.asLLMFilterPred(c, input); ok && !o.opts.DisableLLMFilter[conjKey(bin)] {
					_ = binding
					llmFilters = append(llmFilters, bin)
					continue
				}
			}
			rest = append(rest, c)
		}
		out := input
		for _, bin := range llmFilters {
			ref := bin.Left.(*ast.ColumnRef)
			binding, _ := o.bindingOf(ref)
			info := o.bindings[binding]
			keyCol := out.Schema().IndexOf(bindingName(out, binding), info.def.KeyColumn)
			if keyCol < 0 {
				// Key not materialized here; fall back to fetch+filter.
				rest = append(rest, bin)
				continue
			}
			out = &logical.LLMFilter{Input: out, Table: info.def, Binding: bindingName(out, binding), Cond: bin, KeyCol: keyCol}
		}
		if cond := joinConjuncts(rest); cond != nil {
			var err error
			out, err = o.ensureAttrsFor(out, cond)
			if err != nil {
				return nil, err
			}
			out = &logical.Filter{Input: out, Cond: cond}
		}
		return out, nil

	case *logical.Join:
		left, err := o.lower(node.Left)
		if err != nil {
			return nil, err
		}
		right, err := o.lower(node.Right)
		if err != nil {
			return nil, err
		}
		if node.On != nil {
			leftB := subtreeBindings(left)
			for _, ref := range ast.ColumnRefs(node.On) {
				b, ok := o.bindingOf(ref)
				if !ok {
					return nil, fmt.Errorf("optimizer: cannot resolve %s", ref.String())
				}
				if leftB[b] {
					left, err = o.ensureAttr(left, ref)
				} else {
					right, err = o.ensureAttr(right, ref)
				}
				if err != nil {
					return nil, err
				}
			}
		}
		return logical.NewJoin(left, right, node.Type, node.On), nil

	case *logical.Aggregate:
		input, err := o.lower(node.Input)
		if err != nil {
			return nil, err
		}
		for _, g := range node.GroupBy {
			input, err = o.ensureAttrsFor(input, g)
			if err != nil {
				return nil, err
			}
		}
		for _, a := range node.Aggs {
			for _, arg := range a.Call.Args {
				if _, isStar := arg.(*ast.Star); isStar {
					continue
				}
				input, err = o.ensureAttrsFor(input, arg)
				if err != nil {
					return nil, err
				}
			}
		}
		return logical.NewAggregate(input, node.GroupBy, node.Aggs)

	case *logical.Project:
		input, err := o.lower(node.Input)
		if err != nil {
			return nil, err
		}
		for _, it := range node.Items {
			input, err = o.ensureAttrsFor(input, it.Expr)
			if err != nil {
				return nil, err
			}
		}
		return logical.NewProject(input, node.Items, node.Hidden)

	default:
		children := n.Children()
		if len(children) != 1 {
			return n, nil
		}
		input, err := o.lower(children[0])
		if err != nil {
			return nil, err
		}
		return rebuildUnary(n, input)
	}
}

// bindingName returns the original-case binding name as it appears in the
// node's schema (bindings map keys are lower-cased).
func bindingName(n logical.Node, lower string) string {
	for _, c := range n.Schema().Columns {
		if strings.ToLower(c.Table) == lower {
			return c.Table
		}
	}
	return lower
}

// ResidualLocalSafe reports whether direct execution is guaranteed to
// evaluate conjunct c as a plain in-memory comparison in every candidate
// plan over the given FROM tree. Simple column-vs-literal comparisons on
// non-key attributes of LLM-backed scans are NOT safe: the engine may
// lower them to per-key boolean prompts (LLMFilter), whose semantic
// judgment is authoritative and need not agree with a literal comparison
// against fetched attribute values. The semantic result cache therefore
// refuses to evaluate such a conjunct locally in a residual plan —
// subsumption only fires when the cached producer already applied them.
func ResidualLocalSafe(c ast.Expr, from logical.Node) bool {
	o := &optimizer{bindings: map[string]scanInfo{}}
	o.collectBindings(from)
	bin, ok := c.(*ast.Binary)
	if !ok {
		return true
	}
	switch bin.Op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return true
	}
	ref, refLeft := bin.Left.(*ast.ColumnRef)
	_, litRight := bin.Right.(*ast.Literal)
	if !refLeft || !litRight {
		ref2, ok2 := bin.Right.(*ast.ColumnRef)
		_, ok3 := bin.Left.(*ast.Literal)
		if !ok2 || !ok3 {
			return true
		}
		ref = ref2
	}
	binding, ok := o.bindingOf(ref)
	if !ok {
		// Unresolvable or ambiguous reference: refuse rather than guess.
		return false
	}
	info := o.bindings[binding]
	if info.source != "LLM" {
		return true
	}
	// The key column is materialized by every LLM scan, so a predicate on
	// it always runs as a local filter.
	return strings.EqualFold(ref.Name, info.def.KeyColumn)
}

// asLLMFilterPred checks whether conjunct c can run as a per-key boolean
// prompt: a comparison between one column of an LLM binding (non-key,
// not yet fetched) and a literal. It returns the normalized binary with
// the column on the left.
func (o *optimizer) asLLMFilterPred(c ast.Expr, input logical.Node) (*ast.Binary, string, bool) {
	bin, ok := c.(*ast.Binary)
	if !ok {
		return nil, "", false
	}
	switch bin.Op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return nil, "", false
	}
	ref, refLeft := bin.Left.(*ast.ColumnRef)
	lit, litRight := bin.Right.(*ast.Literal)
	if !refLeft || !litRight {
		// Try the mirrored form literal op column.
		ref2, ok2 := bin.Right.(*ast.ColumnRef)
		lit2, ok3 := bin.Left.(*ast.Literal)
		if !ok2 || !ok3 {
			return nil, "", false
		}
		ref, lit = ref2, lit2
		bin = &ast.Binary{Op: mirrorOp(bin.Op), Left: ref, Right: lit}
	} else {
		bin = &ast.Binary{Op: bin.Op, Left: ref, Right: lit}
	}
	binding, ok := o.bindingOf(ref)
	if !ok {
		return nil, "", false
	}
	info := o.bindings[binding]
	if info.source != "LLM" {
		return nil, "", false
	}
	if strings.EqualFold(ref.Name, info.def.KeyColumn) {
		return nil, "", false
	}
	// Already fetched? Then a traditional filter is cheaper.
	if input.Schema().IndexOf(bindingName(input, binding), ref.Name) >= 0 {
		return nil, "", false
	}
	return bin, binding, true
}

func mirrorOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// ensureAttrsFor injects FetchAttr nodes for every unresolved reference
// in e.
func (o *optimizer) ensureAttrsFor(n logical.Node, e ast.Expr) (logical.Node, error) {
	var err error
	for _, ref := range ast.ColumnRefs(e) {
		n, err = o.ensureAttr(n, ref)
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// ensureAttr makes sure ref is materialized in n's schema, wrapping n in a
// FetchAttr when the attribute lives in an LLM-bound relation.
func (o *optimizer) ensureAttr(n logical.Node, ref *ast.ColumnRef) (logical.Node, error) {
	if n.Schema().IndexOf(ref.Table, ref.Name) >= 0 {
		return n, nil
	}
	binding, ok := o.bindingOf(ref)
	if !ok {
		return nil, fmt.Errorf("optimizer: cannot resolve column %s", ref.String())
	}
	info, ok := o.bindings[binding]
	if !ok {
		return nil, fmt.Errorf("optimizer: unknown binding %s", binding)
	}
	if info.source != "LLM" {
		return nil, fmt.Errorf("optimizer: column %s not found in %s", ref.String(), info.def.Name)
	}
	// Canonical attribute name from the table definition.
	attr := ref.Name
	for _, c := range info.def.Schema.Columns {
		if strings.EqualFold(c.Name, ref.Name) {
			attr = c.Name
			break
		}
	}
	bn := bindingName(n, binding)
	keyCol := n.Schema().IndexOf(bn, info.def.KeyColumn)
	if keyCol < 0 {
		return nil, fmt.Errorf("optimizer: key %s.%s not materialized for fetch of %s", bn, info.def.KeyColumn, attr)
	}
	return logical.NewFetchAttr(n, info.def, bn, attr, keyCol)
}

// --------------------------------------------------------- prompt pushdown

// promptPushdown merges chains of LLMFilter (and simple Filters) sitting
// directly above an LLM scan into the scan's retrieval prompt.
func (o *optimizer) promptPushdown(n logical.Node) logical.Node {
	switch node := n.(type) {
	case *logical.LLMFilter:
		input := o.promptPushdown(node.Input)
		if scan, ok := input.(*logical.Scan); ok && scan.Source == "LLM" && !o.opts.PromptPushdownSkip[conjKey(node.Cond)] {
			if scan.PushedFilter == nil {
				scan.PushedFilter = node.Cond
			} else {
				scan.PushedFilter = &ast.Binary{Op: "AND", Left: scan.PushedFilter, Right: node.Cond}
			}
			return scan
		}
		node.Input = input
		return node
	case *logical.Filter:
		input := o.promptPushdown(node.Input)
		if scan, ok := input.(*logical.Scan); ok && scan.Source == "LLM" {
			if simple, _, ok := o.asSimplePred(node.Cond); ok && !o.opts.PromptPushdownSkip[conjKey(simple)] {
				if scan.PushedFilter == nil {
					scan.PushedFilter = simple
				} else {
					scan.PushedFilter = &ast.Binary{Op: "AND", Left: scan.PushedFilter, Right: simple}
				}
				return scan
			}
		}
		node.Input = input
		return node
	case *logical.Join:
		node.Left = o.promptPushdown(node.Left)
		node.Right = o.promptPushdown(node.Right)
		return logical.NewJoin(node.Left, node.Right, node.Type, node.On)
	default:
		children := n.Children()
		if len(children) == 1 {
			rebuilt, err := rebuildUnary(n, o.promptPushdown(children[0]))
			if err == nil {
				return rebuilt
			}
		}
		return n
	}
}

// asSimplePred accepts column-op-literal comparisons regardless of source
// (used only for prompt pushdown above an LLM scan).
func (o *optimizer) asSimplePred(c ast.Expr) (*ast.Binary, string, bool) {
	bin, ok := c.(*ast.Binary)
	if !ok {
		return nil, "", false
	}
	switch bin.Op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return nil, "", false
	}
	ref, okL := bin.Left.(*ast.ColumnRef)
	_, okR := bin.Right.(*ast.Literal)
	if !okL || !okR {
		return nil, "", false
	}
	binding, ok := o.bindingOf(ref)
	if !ok {
		return nil, "", false
	}
	// Never merge a predicate on the key attribute into the retrieval
	// prompt: the keys are already materialized, so a traditional filter
	// is free, while a merged condition degrades the scan's accuracy —
	// and every later attribute fetch depends on those keys being right.
	if info, known := o.bindings[binding]; known && strings.EqualFold(ref.Name, info.def.KeyColumn) {
		return nil, "", false
	}
	return bin, binding, true
}
