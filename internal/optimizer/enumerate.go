package optimizer

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/logical"
)

// maxCandidateBits caps the enumeration: every bit doubles the candidate
// count, so 6 bits bound the search at 64 plans.
const maxCandidateBits = 6

// ChoiceSummary records one enumerated candidate for EXPLAIN.
type ChoiceSummary struct {
	Label   string
	Prompts float64
	Latency time.Duration
	Chosen  bool
}

// choicePoint is one binary decision of the candidate space.
type choicePoint struct {
	kind string // "fetch", "swap", "nopush"
	key  string // conjunct key, or join index rendered
	join int
}

// ChooseBest enumerates candidate plans and returns the one with the
// lowest estimated cost (fewest prompts, then shortest makespan; ties
// keep the fixed-heuristic shape). factory must return a fresh logical
// plan on every call — Optimize annotates plans in place, so candidates
// cannot share nodes.
//
// The candidate space is spanned by:
//   - per eligible conjunct: per-key boolean prompt (LLMFilter) vs
//     fetch-then-filter;
//   - per join: input order (inner/cross joins only);
//   - per pushable conjunct (only when base.PromptPushdown is on):
//     merged into the retrieval prompt vs staged;
//   - filter chains are always reordered most-selective-first using st.
func ChooseBest(factory func() (logical.Node, error), base Options, st *Statistics, p CostParams) (logical.Node, *PlanCost, []ChoiceSummary, error) {
	return ChooseBestExtra(factory, base, st, p, nil)
}

// ExtraPlan is a pre-built candidate injected into ChooseBestExtra's
// comparison from outside the rewrite space — the session's residual
// plans over cached relations. Extras are priced with the same Estimate
// and compete under the same order as enumerated candidates, so cache
// answering and plan selection unify: a residual plan wins exactly when
// it is estimated strictly cheaper than every fresh execution.
type ExtraPlan struct {
	Plan  logical.Node
	Label string
}

// ChooseBestExtra is ChooseBest with externally supplied extra
// candidates joining the enumeration.
func ChooseBestExtra(factory func() (logical.Node, error), base Options, st *Statistics, p CostParams, extras []ExtraPlan) (logical.Node, *PlanCost, []ChoiceSummary, error) {
	if st == nil {
		st = NewStatistics()
	}

	// Probe pass: the fixed-heuristic plan reveals the decision points.
	probeOpts := base
	probeOpts.Stats = nil
	probeOpts.DisableLLMFilter = nil
	probeOpts.PromptPushdownSkip = nil
	probeOpts.SwapJoins = nil
	probe, err := factory()
	if err != nil {
		return nil, nil, nil, err
	}
	probe, err = Optimize(probe, probeOpts)
	if err != nil {
		return nil, nil, nil, err
	}

	var filterKeys []string
	var pushedKeys []string
	joins := 0
	seen := map[string]bool{}
	var walk func(logical.Node)
	walk = func(n logical.Node) {
		switch node := n.(type) {
		case *logical.LLMFilter:
			k := conjKey(node.Cond)
			if !seen[k] {
				seen[k] = true
				filterKeys = append(filterKeys, k)
			}
		case *logical.Join:
			joins++
		case *logical.Scan:
			if node.PushedFilter != nil {
				for _, c := range SplitConjuncts(node.PushedFilter) {
					k := conjKey(c)
					if !seen["push:"+k] {
						seen["push:"+k] = true
						pushedKeys = append(pushedKeys, k)
					}
				}
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(probe)
	sort.Strings(filterKeys)
	sort.Strings(pushedKeys)

	// Assemble the decision points under the bit budget: filter-mode
	// choices matter most (they change prompt counts directly), then
	// pushdown, then join order (latency only).
	var points []choicePoint
	for _, k := range filterKeys {
		points = append(points, choicePoint{kind: "fetch", key: k})
	}
	if base.PromptPushdown {
		for _, k := range pushedKeys {
			points = append(points, choicePoint{kind: "nopush", key: k})
		}
	}
	for j := 0; j < joins; j++ {
		points = append(points, choicePoint{kind: "swap", join: j})
	}
	if len(points) > maxCandidateBits {
		points = points[:maxCandidateBits]
	}

	type scored struct {
		plan  logical.Node
		cost  *PlanCost
		label string
	}
	var best *scored
	var summaries []ChoiceSummary
	bestIdx := -1

	for mask := 0; mask < 1<<len(points); mask++ {
		opts := base
		opts.Stats = st
		opts.DisableLLMFilter = map[string]bool{}
		opts.PromptPushdownSkip = map[string]bool{}
		opts.SwapJoins = map[int]bool{}
		var parts []string
		for i, pt := range points {
			if mask&(1<<i) == 0 {
				continue
			}
			switch pt.kind {
			case "fetch":
				opts.DisableLLMFilter[pt.key] = true
				parts = append(parts, "fetch{"+pt.key+"}")
			case "nopush":
				opts.PromptPushdownSkip[pt.key] = true
				parts = append(parts, "stage{"+pt.key+"}")
			case "swap":
				opts.SwapJoins[pt.join] = true
				parts = append(parts, fmt.Sprintf("swap{%d}", pt.join))
			}
		}
		label := "paper"
		if len(parts) > 0 {
			label = strings.Join(parts, " ")
		}

		plan, err := factory()
		if err != nil {
			return nil, nil, nil, err
		}
		plan, err = Optimize(plan, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		cost := Estimate(plan, st, p)
		summaries = append(summaries, ChoiceSummary{Label: label, Prompts: cost.Prompts, Latency: cost.Latency})

		if best == nil || less(cost, best.cost) {
			best = &scored{plan: plan, cost: cost, label: label}
			bestIdx = len(summaries) - 1
		}
	}
	for _, ex := range extras {
		cost := Estimate(ex.Plan, st, p)
		summaries = append(summaries, ChoiceSummary{Label: ex.Label, Prompts: cost.Prompts, Latency: cost.Latency})
		if less(cost, best.cost) {
			best = &scored{plan: ex.Plan, cost: cost, label: ex.Label}
			bestIdx = len(summaries) - 1
		}
	}
	if best == nil { // no candidates — cannot happen, mask 0 always runs
		return nil, nil, nil, fmt.Errorf("optimizer: no candidate plans")
	}
	summaries[bestIdx].Chosen = true
	best.cost.Candidates = len(summaries)
	best.cost.Choice = best.label
	return best.plan, best.cost, summaries, nil
}

// Cheaper reports whether a costs strictly less than b under the
// planner's order. Sessions running without cost-based enumeration use
// it to decide whether a residual plan over a cached relation beats the
// fixed-heuristic plan; strictness means fresh execution wins full ties.
func Cheaper(a, b *PlanCost) bool { return less(a, b) }

// less orders candidate costs: the backend-weighted prompt cost
// dominates (it is the money), the estimated makespan breaks ties. On an
// unpriced estimate Cost equals Prompts, so single-backend planning is
// ordered exactly as before routing existed. Strict comparison keeps the
// first (paper-shaped) candidate on full ties.
func less(a, b *PlanCost) bool {
	const eps = 1e-9
	if a.Cost < b.Cost-eps {
		return true
	}
	if a.Cost > b.Cost+eps {
		return false
	}
	return a.Latency < b.Latency
}
