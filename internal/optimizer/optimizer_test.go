package optimizer

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
	"repro/internal/value"
)

type resolver struct{}

func tableDef(name, key string, cols ...schema.Column) *schema.TableDef {
	return &schema.TableDef{Name: name, KeyColumn: key, Schema: schema.New(cols...)}
}

func (resolver) ResolveTable(name, explicit string) (*schema.TableDef, string, error) {
	switch strings.ToLower(name) {
	case "city":
		return tableDef("city", "name",
			schema.Column{Name: "name", Type: value.KindString},
			schema.Column{Name: "country", Type: value.KindString},
			schema.Column{Name: "mayor", Type: value.KindString},
			schema.Column{Name: "population", Type: value.KindInt},
		), "LLM", nil
	case "mayor":
		return tableDef("mayor", "name",
			schema.Column{Name: "name", Type: value.KindString},
			schema.Column{Name: "age", Type: value.KindInt},
		), "LLM", nil
	case "employees":
		return tableDef("employees", "id",
			schema.Column{Name: "id", Type: value.KindInt},
			schema.Column{Name: "countryCode", Type: value.KindString},
			schema.Column{Name: "salary", Type: value.KindFloat},
		), "DB", nil
	}
	return nil, "", fmt.Errorf("no table %s", name)
}

func optimize(t *testing.T, sql string, opts Options) logical.Node {
	t.Helper()
	sel, err := parser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := logical.Build(sel, resolver{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Optimize(plan, opts)
	if err != nil {
		t.Fatalf("Optimize(%q): %v", sql, err)
	}
	return out
}

func TestSplitConjuncts(t *testing.T) {
	sel, _ := parser.ParseSelect("SELECT x FROM t WHERE a = 1 AND b = 2 AND (c = 3 OR d = 4)")
	cs := SplitConjuncts(sel.Where)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d: %v", len(cs), cs)
	}
	if _, ok := cs[2].(*ast.Binary); !ok {
		t.Error("OR stays one conjunct")
	}
}

func TestCrossBecomesEquiJoin(t *testing.T) {
	plan := optimize(t, "SELECT c.name, p.age FROM city c, mayor p WHERE c.mayor = p.name", Defaults())
	explain := logical.Explain(plan)
	if !strings.Contains(explain, "Join ON c.mayor = p.name") {
		t.Errorf("equality should become the join condition:\n%s", explain)
	}
	if strings.Contains(explain, "CrossJoin") {
		t.Errorf("cross join should have been upgraded:\n%s", explain)
	}
}

func TestPredicatePushdownToSides(t *testing.T) {
	plan := optimize(t, "SELECT c.name, e.salary FROM city c, employees e WHERE c.country = e.countryCode AND e.salary > 100", Defaults())
	explain := logical.Explain(plan)
	// salary filter must sit below the join, on the employees side.
	joinLine, filterLine := -1, -1
	for i, line := range strings.Split(explain, "\n") {
		if strings.Contains(line, "Join ON") {
			joinLine = i
		}
		if strings.Contains(line, "Filter e.salary > 100") {
			filterLine = i
		}
	}
	if joinLine < 0 || filterLine < 0 || filterLine < joinLine {
		t.Errorf("salary filter not pushed below join:\n%s", explain)
	}
}

func TestLLMFilterInjection(t *testing.T) {
	plan := optimize(t, "SELECT name FROM city WHERE population > 1000000", Defaults())
	explain := logical.Explain(plan)
	if !strings.Contains(explain, "LLMFilter city.population > 1000000") &&
		!strings.Contains(explain, "LLMFilter population > 1000000") {
		t.Errorf("selection should lower to a boolean-prompt filter:\n%s", explain)
	}
	if strings.Contains(explain, "LLMFetchAttr") {
		t.Errorf("LLMFilter avoids fetching the attribute:\n%s", explain)
	}
}

func TestFetchAttrInjectionForProjection(t *testing.T) {
	plan := optimize(t, "SELECT name, population FROM city", Defaults())
	explain := logical.Explain(plan)
	if !strings.Contains(explain, "LLMFetchAttr") {
		t.Errorf("projected non-key attribute must be fetched:\n%s", explain)
	}
}

func TestFetchAttrForJoinKeys(t *testing.T) {
	plan := optimize(t, "SELECT c.name FROM city c, mayor p WHERE c.mayor = p.name", Defaults())
	explain := logical.Explain(plan)
	if !strings.Contains(explain, "LLMFetchAttr c.mayor") {
		t.Errorf("join attribute must be fetched before the join:\n%s", explain)
	}
}

func TestFetchThenFilterWhenLLMFilterDisabled(t *testing.T) {
	opts := Defaults()
	opts.UseLLMFilter = false
	plan := optimize(t, "SELECT name FROM city WHERE population > 1000000", opts)
	explain := logical.Explain(plan)
	if strings.Contains(explain, "LLMFilter") {
		t.Errorf("LLMFilter disabled but present:\n%s", explain)
	}
	if !strings.Contains(explain, "LLMFetchAttr") || !strings.Contains(explain, "Filter ") {
		t.Errorf("should fall back to fetch+filter:\n%s", explain)
	}
}

func TestPromptPushdown(t *testing.T) {
	opts := Defaults()
	opts.PromptPushdown = true
	plan := optimize(t, "SELECT name FROM city WHERE population > 1000000", opts)
	explain := logical.Explain(plan)
	if !strings.Contains(explain, "[pushed:") {
		t.Errorf("selection should merge into the scan prompt:\n%s", explain)
	}
	if strings.Contains(explain, "LLMFilter") {
		t.Errorf("no residual per-key filter expected:\n%s", explain)
	}
}

// TestFigure3Plan pins the lowered plan shape for the paper's q'.
func TestFigure3Plan(t *testing.T) {
	plan := optimize(t, "SELECT c.name, p.name FROM city c, mayor p WHERE c.mayor = p.name AND c.population > 1000000 AND p.age < 40", Defaults())
	got := logical.Explain(plan)
	want := `Project c.name, p.name
  Join ON c.mayor = p.name
    LLMFetchAttr c.mayor (per key c.name)
      LLMFilter c.population > 1000000 (per key c.name)
        LLMKeyScan city AS c (key=name)
    LLMFilter p.age < 40 (per key p.name)
      LLMKeyScan mayor AS p (key=name)
`
	if got != want {
		t.Errorf("Figure 3 plan drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestNonSimplePredicateStaysTraditional(t *testing.T) {
	// population + 1 > 2 is not a column-op-literal form.
	plan := optimize(t, "SELECT name FROM city WHERE population + 1 > 1000000", Defaults())
	explain := logical.Explain(plan)
	if strings.Contains(explain, "LLMFilter") {
		t.Errorf("complex predicate must not become a boolean prompt:\n%s", explain)
	}
	if !strings.Contains(explain, "LLMFetchAttr") {
		t.Errorf("complex predicate needs the attribute fetched:\n%s", explain)
	}
}

func TestMirroredLiteralComparison(t *testing.T) {
	plan := optimize(t, "SELECT name FROM city WHERE 1000000 < population", Defaults())
	explain := logical.Explain(plan)
	if !strings.Contains(explain, "LLMFilter") {
		t.Errorf("mirrored comparison should still lower:\n%s", explain)
	}
	if !strings.Contains(explain, "population > 1000000") {
		t.Errorf("mirrored op should normalize:\n%s", explain)
	}
}

func TestPushdownDisabled(t *testing.T) {
	opts := Defaults()
	opts.PushdownPredicates = false
	plan := optimize(t, "SELECT c.name FROM city c, mayor p WHERE c.mayor = p.name", opts)
	explain := logical.Explain(plan)
	if !strings.Contains(explain, "CrossJoin") {
		t.Errorf("without pushdown the cross join stays:\n%s", explain)
	}
}

func TestDBOnlyPlanUntouchedByLowering(t *testing.T) {
	plan := optimize(t, "SELECT id FROM employees WHERE salary > 100", Defaults())
	explain := logical.Explain(plan)
	if strings.Contains(explain, "LLM") {
		t.Errorf("DB plan must not grow LLM operators:\n%s", explain)
	}
}

func TestPushdownThroughSortLimitDistinct(t *testing.T) {
	// Pushdown must traverse (rebuild) unary nodes above the join without
	// disturbing them.
	plan := optimize(t, "SELECT DISTINCT c.name FROM city c, mayor p WHERE c.mayor = p.name ORDER BY c.name LIMIT 3", Defaults())
	explain := logical.Explain(plan)
	for _, want := range []string{"Distinct", "Sort", "Limit 3", "Join ON"} {
		if !strings.Contains(explain, want) {
			t.Errorf("missing %q after optimization:\n%s", want, explain)
		}
	}
}

func TestPromptPushdownMultipleConditions(t *testing.T) {
	opts := Defaults()
	opts.PromptPushdown = true
	plan := optimize(t, "SELECT name FROM city WHERE population > 1000000 AND country = 'Italy'", opts)
	explain := logical.Explain(plan)
	if !strings.Contains(explain, "AND") || !strings.Contains(explain, "[pushed:") {
		t.Errorf("both conditions should merge into one pushed predicate:\n%s", explain)
	}
}

func TestPromptPushdownLeavesJoinsAlone(t *testing.T) {
	opts := Defaults()
	opts.PromptPushdown = true
	plan := optimize(t, "SELECT c.name FROM city c, mayor p WHERE c.mayor = p.name AND p.age < 40", opts)
	explain := logical.Explain(plan)
	// The age filter sits on the mayor scan and can push; the join must
	// survive intact.
	if !strings.Contains(explain, "Join ON") {
		t.Errorf("join lost:\n%s", explain)
	}
	if !strings.Contains(explain, "[pushed: mayor.age < 40]") && !strings.Contains(explain, "[pushed: p.age < 40]") {
		t.Errorf("age filter not pushed into the mayor scan:\n%s", explain)
	}
}

func TestFilterOnKeyAttributeStaysTraditional(t *testing.T) {
	// The key column is already materialized by the scan; comparisons on
	// it never need a prompt.
	plan := optimize(t, "SELECT name FROM city WHERE name = 'Rome'", Defaults())
	explain := logical.Explain(plan)
	if strings.Contains(explain, "LLMFilter") || strings.Contains(explain, "LLMFetchAttr") {
		t.Errorf("key comparison must be a traditional filter:\n%s", explain)
	}
	if !strings.Contains(explain, "Filter") {
		t.Errorf("filter missing:\n%s", explain)
	}
}

func TestLikePredicateFetchesAttribute(t *testing.T) {
	// LIKE is not a boolean-prompt form; the attribute must be fetched.
	plan := optimize(t, "SELECT name FROM city WHERE country LIKE 'United%'", Defaults())
	explain := logical.Explain(plan)
	if strings.Contains(explain, "LLMFilter") {
		t.Errorf("LIKE must not lower to a boolean prompt:\n%s", explain)
	}
	if !strings.Contains(explain, "LLMFetchAttr") {
		t.Errorf("LIKE needs the attribute fetched:\n%s", explain)
	}
}

func TestAggregateOverLLMScanFetchesArg(t *testing.T) {
	plan := optimize(t, "SELECT AVG(population) FROM city", Defaults())
	explain := logical.Explain(plan)
	if !strings.Contains(explain, "LLMFetchAttr") || !strings.Contains(explain, "Aggregate") {
		t.Errorf("aggregate argument must be fetched before aggregation:\n%s", explain)
	}
}

func TestOrExpressionStaysWhole(t *testing.T) {
	// OR is one conjunct: it cannot split, cannot become an LLMFilter,
	// and must be evaluated after fetching both attributes.
	plan := optimize(t, "SELECT name FROM city WHERE population > 1000000 OR country = 'Italy'", Defaults())
	explain := logical.Explain(plan)
	if strings.Contains(explain, "LLMFilter") {
		t.Errorf("OR must not lower to boolean prompts:\n%s", explain)
	}
	if strings.Count(explain, "LLMFetchAttr") != 2 {
		t.Errorf("both OR attributes need fetching:\n%s", explain)
	}
}

func TestUnknownColumnSurfacesAtOptimize(t *testing.T) {
	sel, err := parser.ParseSelect("SELECT COUNT(*) FROM city WHERE flavor = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := logical.Build(sel, resolver{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(plan, Defaults()); err == nil {
		t.Error("unknown filter column must fail during lowering")
	}
}

func TestDedupFetchAttr(t *testing.T) {
	// The same attribute referenced twice is fetched once.
	plan := optimize(t, "SELECT population, population FROM city", Defaults())
	explain := logical.Explain(plan)
	if strings.Count(explain, "LLMFetchAttr") != 1 {
		t.Errorf("duplicate fetch nodes:\n%s", explain)
	}
}

// TestPromptPushdownSkipsKeyPredicate is the regression test for the
// eligibility fix: a predicate on the key attribute must never merge
// into the retrieval prompt. The keys are already materialized, so the
// traditional filter is free — pushing would trade accuracy (the merged
// prompt answers with a penalty) for zero prompt savings, and every
// later attribute fetch depends on exactly those keys.
func TestPromptPushdownSkipsKeyPredicate(t *testing.T) {
	opts := Defaults()
	opts.PromptPushdown = true
	plan := optimize(t, "SELECT population FROM city WHERE name = 'Tokyo'", opts)
	explain := logical.Explain(plan)
	if strings.Contains(explain, "[pushed:") {
		t.Errorf("key predicate must not merge into the scan prompt:\n%s", explain)
	}
	if !strings.Contains(explain, "Filter name = 'Tokyo'") {
		t.Errorf("key predicate must stay a traditional filter:\n%s", explain)
	}

	// Mixed case: the non-key conjunct may push, the key conjunct stays.
	plan = optimize(t, "SELECT name FROM city WHERE population > 1000000 AND name != 'Tokyo'", opts)
	explain = logical.Explain(plan)
	if !strings.Contains(explain, "[pushed: population > 1000000]") {
		t.Errorf("non-key conjunct should still push:\n%s", explain)
	}
	if strings.Contains(explain, "pushed: name") || strings.Contains(explain, "AND name") {
		t.Errorf("key conjunct leaked into the scan prompt:\n%s", explain)
	}
}

// TestCostBasedChoosesFetchWhenAttrProjected pins the headline win of
// plan enumeration: when a filtered attribute is also projected, the
// fixed heuristics pay a per-key boolean prompt AND a later fetch, while
// fetch-then-filter subsumes the filter for free.
func TestCostBasedChoosesFetchWhenAttrProjected(t *testing.T) {
	sql := "SELECT name, population FROM city WHERE population > 1000000"
	sel, err := parser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() (logical.Node, error) { return logical.Build(sel, resolver{}) }
	plan, cost, choices, err := ChooseBest(factory, Defaults(), NewStatistics(), CostParams{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	explain := logical.Explain(plan)
	if strings.Contains(explain, "LLMFilter") {
		t.Errorf("projected attribute should be fetched, not prompt-filtered:\n%s", explain)
	}
	if !strings.Contains(explain, "LLMFetchAttr city.population") {
		t.Errorf("fetch missing:\n%s", explain)
	}
	if len(choices) < 2 {
		t.Errorf("expected at least 2 candidates, got %d", len(choices))
	}
	// The chosen plan must be at least as cheap as the paper-shaped one.
	for _, ch := range choices {
		if ch.Label == "paper" && cost.Prompts > ch.Prompts {
			t.Errorf("chosen plan (%f prompts) beats paper (%f)", cost.Prompts, ch.Prompts)
		}
	}
}

// TestOrderLLMFiltersMostSelectiveFirst checks the statistics-driven
// filter ordering: the filter discarding more tuples runs first.
func TestOrderLLMFiltersMostSelectiveFirst(t *testing.T) {
	st := NewStatistics()
	// Observed: the population predicate passes almost everything, the
	// country predicate almost nothing.
	st.ObserveFilter("city", "population", ">", "1000000", 100, 90)
	st.ObserveFilter("city", "country", "=", "Italy", 100, 5)

	opts := Defaults()
	opts.Stats = st
	plan := optimize(t, "SELECT name FROM city WHERE population > 1000000 AND country = 'Italy'", opts)
	explain := logical.Explain(plan)
	popIdx := strings.Index(explain, "LLMFilter population")
	countryIdx := strings.Index(explain, "LLMFilter country")
	if popIdx < 0 || countryIdx < 0 {
		t.Fatalf("expected two LLM filters:\n%s", explain)
	}
	// Deeper in the tree (= later in the explain text) runs first; the
	// selective country filter must be innermost.
	if countryIdx < popIdx {
		t.Errorf("most selective filter should run first (innermost):\n%s", explain)
	}
}

// TestJoinOrderChangesEstimatedLatency pins that the cost model is
// order-sensitive for joins (the build side blocks the first probe row),
// so join-swap candidates are genuinely differentiated rather than
// permanent ties that the paper-shaped candidate always wins.
func TestJoinOrderChangesEstimatedLatency(t *testing.T) {
	// p.age is projected, so a fetch runs above the join: its start is
	// anchored at the build side's completion, which is what the swap
	// changes.
	sql := "SELECT c.name, p.age FROM city c, mayor p WHERE c.mayor = p.name AND c.population > 1000000"
	sel, err := parser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() (logical.Node, error) { return logical.Build(sel, resolver{}) }
	_, _, choices, err := ChooseBest(factory, Defaults(), NewStatistics(), CostParams{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var paper, swapped *ChoiceSummary
	for i := range choices {
		switch choices[i].Label {
		case "paper":
			paper = &choices[i]
		case "swap{0}":
			swapped = &choices[i]
		}
	}
	if paper == nil || swapped == nil {
		t.Fatalf("expected paper and swap{0} candidates, got %+v", choices)
	}
	if paper.Prompts != swapped.Prompts {
		t.Errorf("join order must not change prompt counts: %f vs %f", paper.Prompts, swapped.Prompts)
	}
	if paper.Latency == swapped.Latency {
		t.Errorf("join order should change the estimated makespan (build side blocks probing); both sides estimate %s", paper.Latency)
	}
}
