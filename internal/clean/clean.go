// Package clean normalizes the raw strings an LLM returns into typed cell
// values (Section 4 of the paper: "We normalize every string expressing a
// numerical value (say, 1k) into a number (1000). The enforcing of type
// and domain constraints is a simple but crucial step to limit the
// incorrect output due to model hallucinations.").
//
// The package is deliberately LLM-agnostic string surgery: numeric surface
// forms ("1.2 million", "$5,400", "78 years"), multiple date formats, list
// markers, and a pluggable canonicalizer for entity codes (the IT vs ITA
// join-failure fix explored by Ablation C).
package clean

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/value"
)

// Options select which normalizations a Cleaner applies.
type Options struct {
	// NormalizeNumbers converts "1k" / "3.5 million" / "$1,200" style
	// strings into plain numbers before typing.
	NormalizeNumbers bool
	// EnforceTypes rejects values that cannot be parsed as the expected
	// column type, turning them into NULL instead of polluting results.
	EnforceTypes bool
	// Canonicalizer, when non-nil, rewrites known surface-form aliases to
	// a canonical spelling before string values are stored (e.g. alpha-2
	// country codes to alpha-3).
	Canonicalizer *Canonicalizer
}

// DefaultOptions is the paper-faithful configuration (numbers normalized,
// types enforced, no code canonicalization).
func DefaultOptions() Options {
	return Options{NormalizeNumbers: true, EnforceTypes: true}
}

// Cleaner applies the configured normalizations.
type Cleaner struct {
	opts Options
}

// New builds a Cleaner.
func New(opts Options) *Cleaner { return &Cleaner{opts: opts} }

// Cell converts one raw LLM answer into a typed value for a column of the
// given kind. With type enforcement off, unparseable strings pass through
// as TEXT; with it on they become NULL.
func (c *Cleaner) Cell(raw string, kind value.Kind) value.Value {
	s := Strip(raw)
	if s == "" || isUnknown(s) {
		return value.Null()
	}
	if c.opts.Canonicalizer != nil && kind == value.KindString {
		s = c.opts.Canonicalizer.Apply(s)
	}
	switch kind {
	case value.KindInt, value.KindFloat:
		if c.opts.NormalizeNumbers {
			if f, ok := ParseNumber(s); ok {
				if kind == value.KindInt {
					return value.Int(int64(math.Round(f)))
				}
				return value.Float(f)
			}
		} else if v, err := value.ParseAs(kind, s); err == nil {
			return v
		}
	case value.KindDate:
		if v, ok := ParseDate(s); ok {
			return v
		}
	case value.KindBool:
		if v, err := value.ParseAs(value.KindBool, s); err == nil {
			return v
		}
	case value.KindString:
		return value.Text(s)
	}
	if c.opts.EnforceTypes {
		return value.Null()
	}
	return value.Text(s)
}

// Key cleans a key-attribute string from a list response: strip markers
// and decorations, keep the entity name, canonicalize if configured.
func (c *Cleaner) Key(raw string) string {
	s := Strip(raw)
	if isUnknown(s) {
		return ""
	}
	if c.opts.Canonicalizer != nil {
		s = c.opts.Canonicalizer.Apply(s)
	}
	return s
}

// Strip removes list markers, surrounding punctuation and whitespace from
// one response line: "- New York City." → "New York City".
func Strip(s string) string {
	s = strings.TrimSpace(s)
	// Leading bullets and enumerations: "-", "*", "•", "1.", "2)", "(3)".
	for {
		t := strings.TrimLeft(s, "-*•· \t")
		t = strings.TrimSpace(t)
		if n := leadingEnumeration(t); n > 0 {
			t = strings.TrimSpace(t[n:])
		}
		if t == s {
			break
		}
		s = t
	}
	s = strings.Trim(s, " \t\"'")
	s = strings.TrimRight(s, ".,;: ")
	return strings.TrimSpace(s)
}

// leadingEnumeration returns the byte length of a leading "12." / "12)" /
// "(12)" marker, or 0.
func leadingEnumeration(s string) int {
	i := 0
	open := false
	if i < len(s) && s[i] == '(' {
		open = true
		i++
	}
	start := i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == start || i-start > 3 {
		return 0
	}
	if i < len(s) && (s[i] == '.' || s[i] == ')') {
		if open && s[i] != ')' {
			return 0
		}
		// A marker must be followed by a space (or end the string);
		// otherwise "93.7" would lose its integer part.
		if i+1 < len(s) && s[i+1] != ' ' {
			return 0
		}
		return i + 1
	}
	return 0
}

func isUnknown(s string) bool {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "unknown", "n/a", "na", "none", "null", "i don't know", "i do not know", "not available", "no answer":
		return true
	}
	return false
}

// magnitudes maps spelled-out and abbreviated magnitude suffixes to their
// multipliers.
var magnitudes = []struct {
	suffix string
	mult   float64
}{
	{"trillion", 1e12},
	{"billion", 1e9},
	{"million", 1e6},
	{"thousand", 1e3},
	{"bn", 1e9},
	{"tn", 1e12},
	{"mm", 1e6},
	{"k", 1e3},
	{"m", 1e6},
	{"b", 1e9},
	{"t", 1e12},
}

// ParseNumber extracts a numeric value from a human-formatted string:
// "1,234", "1.2M", "3.5 million", "$5,400", "about 78 years", "12%".
// It returns false when no usable number is present.
func ParseNumber(s string) (float64, bool) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, false
	}
	// Trim qualifiers and currency decorations.
	for _, prefix := range []string{"about", "around", "approximately", "approx.", "approx", "roughly", "over", "under", "nearly", "~"} {
		s = strings.TrimSpace(strings.TrimPrefix(s, prefix))
	}
	s = strings.TrimLeft(s, "$€£¥ ")

	// Find the first numeric token; chatty answers wrap the number in a
	// sentence ("The population of Chicago is 2.7 million."). Digits glued
	// to letters ("K2", "A380") are part of a word, not a number.
	firstDigit := -1
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			continue
		}
		if i > 0 {
			prev := s[i-1]
			if prev >= 'a' && prev <= 'z' || prev >= 'A' && prev <= 'Z' {
				// Skip the rest of this word.
				for i < len(s) && s[i] != ' ' {
					i++
				}
				continue
			}
		}
		firstDigit = i
		break
	}
	if firstDigit < 0 {
		return 0, false
	}
	if firstDigit > 0 {
		cut := firstDigit
		if s[cut-1] == '-' || s[cut-1] == '+' || s[cut-1] == '.' {
			cut--
		}
		s = s[cut:]
	}

	// Locate the leading numeric token.
	i := 0
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		i++
	}
	start := i
	dots := 0
	for i < len(s) {
		ch := s[i]
		if ch >= '0' && ch <= '9' || ch == ',' {
			i++
			continue
		}
		if ch == '.' && dots == 0 {
			dots++
			i++
			continue
		}
		break
	}
	if i == start {
		return 0, false
	}
	numTok := strings.ReplaceAll(s[:i], ",", "")
	f, err := strconv.ParseFloat(numTok, 64)
	if err != nil {
		return 0, false
	}

	rest := strings.TrimSpace(s[i:])
	// Scientific notation survives ("1.2e9").
	if strings.HasPrefix(rest, "e") || strings.HasPrefix(rest, "E") {
		if full, err := strconv.ParseFloat(strings.ReplaceAll(s[:len(s)], ",", ""), 64); err == nil {
			return full, true
		}
	}
	for _, m := range magnitudes {
		if rest == m.suffix || strings.HasPrefix(rest, m.suffix+" ") ||
			strings.HasPrefix(rest, m.suffix+".") || strings.HasPrefix(rest, m.suffix+",") {
			return f * m.mult, true
		}
	}
	// Units like "years", "people", "km²", "%" are ignored: the number
	// stands.
	return f, true
}

// ParseDate parses the date surface forms models produce.
func ParseDate(s string) (value.Value, bool) {
	s = strings.TrimSpace(s)
	layouts := []string{
		"2006-01-02",
		"January 2, 2006",
		"January 2 2006",
		"Jan 2, 2006",
		"Jan 2 2006",
		"2 January 2006",
		"02/01/2006",
		"01/02/2006",
		"2006/01/02",
	}
	for _, l := range layouts {
		if t, err := time.Parse(l, s); err == nil {
			return value.DateFromTime(t), true
		}
	}
	return value.Null(), false
}

// Canonicalizer rewrites known aliases to canonical spellings. Lookups are
// case-insensitive; the canonical form is returned verbatim.
type Canonicalizer struct {
	aliases map[string]string
}

// NewCanonicalizer builds a canonicalizer from alias→canonical pairs.
func NewCanonicalizer(pairs map[string]string) *Canonicalizer {
	m := make(map[string]string, len(pairs))
	for alias, canon := range pairs {
		m[strings.ToLower(strings.TrimSpace(alias))] = canon
	}
	return &Canonicalizer{aliases: m}
}

// Fingerprint digests the alias table into a short stable string, so
// engine tiers can fold the cleaning configuration into cache keys. A
// nil canonicalizer fingerprints as the empty string.
func (c *Canonicalizer) Fingerprint() string {
	if c == nil {
		return ""
	}
	keys := make([]string, 0, len(c.aliases))
	for k := range c.aliases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'='})
		h.Write([]byte(c.aliases[k]))
		h.Write([]byte{';'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Add registers one alias.
func (c *Canonicalizer) Add(alias, canonical string) {
	c.aliases[strings.ToLower(strings.TrimSpace(alias))] = canonical
}

// Apply rewrites s if it is a known alias; otherwise s is returned
// unchanged.
func (c *Canonicalizer) Apply(s string) string {
	if canon, ok := c.aliases[strings.ToLower(strings.TrimSpace(s))]; ok {
		return canon
	}
	return s
}

// Len reports the number of registered aliases.
func (c *Canonicalizer) Len() int { return len(c.aliases) }

// SplitList breaks a list-style completion into items: one per line for
// bulleted output, comma-separated otherwise.
func SplitList(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var parts []string
	if strings.Contains(s, "\n") {
		parts = strings.Split(s, "\n")
	} else {
		parts = strings.Split(s, ",")
	}
	var out []string
	seen := map[string]bool{}
	for _, p := range parts {
		// Chatty preamble lines ("Here are some cities:") end with a
		// colon; they are framing, not data.
		if strings.HasSuffix(strings.TrimSpace(p), ":") {
			continue
		}
		item := Strip(p)
		if item == "" || isUnknown(item) {
			continue
		}
		lower := strings.ToLower(item)
		if seen[lower] {
			continue
		}
		seen[lower] = true
		out = append(out, item)
	}
	return out
}
