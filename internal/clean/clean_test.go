package clean

import (
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestStrip(t *testing.T) {
	cases := map[string]string{
		"- New York City.":   "New York City",
		"* Paris":            "Paris",
		"• Rome,":            "Rome",
		"1. London":          "London",
		"2) Berlin":          "Berlin",
		"(3) Madrid":         "Madrid",
		"  \"Tokyo\"  ":      "Tokyo",
		"Washington D.C.":    "Washington D.C",
		"plain":              "plain",
		"93.7":               "93.7", // decimals are not list markers
		"12. item":           "item",
		"1234. not-a-marker": "1234. not-a-marker", // >3 digits
	}
	for in, want := range cases {
		if got := Strip(in); got != want {
			t.Errorf("Strip(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseNumber(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"42", 42, true},
		{"1,234", 1234, true},
		{"1,234.5", 1234.5, true},
		{"1k", 1000, true},
		{"1.5k", 1500, true},
		{"2.5M", 2.5e6, true},
		{"3 million", 3e6, true},
		{"1.2 billion", 1.2e9, true},
		{"0.5 trillion", 5e11, true},
		{"2 thousand", 2000, true},
		{"$5,400", 5400, true},
		{"about 78 years", 78, true},
		{"approximately 25.6", 25.6, true},
		{"~90", 90, true},
		{"-42", -42, true},
		{"12%", 12, true},
		{"The population of Chicago is 2.7 million.", 2.7e6, true},
		{"The height of K2 is 8611.", 8611, true}, // digit glued to a letter skipped
		{"no numbers here", 0, false},
		{"", 0, false},
		{"K2", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseNumber(c.in)
		if ok != c.ok {
			t.Errorf("ParseNumber(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && got != c.want {
			t.Errorf("ParseNumber(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

// Property: ParseNumber inverts comma formatting of integers.
func TestParseNumberCommasRoundTrip(t *testing.T) {
	f := func(n int32) bool {
		s := commaFormat(int64(n))
		got, ok := ParseNumber(s)
		return ok && got == float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func commaFormat(n int64) string {
	s := strconv.FormatInt(n, 10)
	neg := false
	if s[0] == '-' {
		neg, s = true, s[1:]
	}
	var out []byte
	for i, d := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, d)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}

func TestParseDate(t *testing.T) {
	want := value.Date(1961, 5, 8)
	for _, in := range []string{"1961-05-08", "May 8, 1961", "8 May 1961", "May 8 1961"} {
		got, ok := ParseDate(in)
		if !ok || !value.Equal(got, want) {
			t.Errorf("ParseDate(%q) = %v, %v", in, got, ok)
		}
	}
	if _, ok := ParseDate("not a date"); ok {
		t.Error("garbage should not parse as a date")
	}
}

func TestCellTyped(t *testing.T) {
	c := New(DefaultOptions())
	if v := c.Cell("1.2 million", value.KindInt); v.AsInt() != 1200000 {
		t.Errorf("int cell = %v", v)
	}
	if v := c.Cell("3.5", value.KindFloat); v.AsFloat() != 3.5 {
		t.Errorf("float cell = %v", v)
	}
	if v := c.Cell("May 8, 1961", value.KindDate); !value.Equal(v, value.Date(1961, 5, 8)) {
		t.Errorf("date cell = %v", v)
	}
	if v := c.Cell("yes", value.KindBool); !v.AsBool() {
		t.Errorf("bool cell = %v", v)
	}
	if v := c.Cell("  Rome. ", value.KindString); v.AsString() != "Rome" {
		t.Errorf("string cell = %v", v)
	}
	if v := c.Cell("Unknown", value.KindInt); !v.IsNull() {
		t.Errorf("Unknown must become NULL, got %v", v)
	}
	// Type enforcement turns garbage into NULL.
	if v := c.Cell("not a number", value.KindInt); !v.IsNull() {
		t.Errorf("enforced garbage = %v", v)
	}
	// Without enforcement, garbage passes through as text.
	loose := New(Options{NormalizeNumbers: true, EnforceTypes: false})
	if v := loose.Cell("not a number", value.KindInt); v.Kind() != value.KindString {
		t.Errorf("unenforced garbage = %v (%v)", v, v.Kind())
	}
}

func TestCellCanonicalizer(t *testing.T) {
	canon := NewCanonicalizer(map[string]string{"IT": "ITA", "usa": "United States"})
	c := New(Options{NormalizeNumbers: true, EnforceTypes: true, Canonicalizer: canon})
	if v := c.Cell("IT", value.KindString); v.AsString() != "ITA" {
		t.Errorf("canonicalized cell = %v", v)
	}
	if got := c.Key("- USA."); got != "United States" {
		t.Errorf("canonicalized key = %q", got)
	}
	if canon.Len() != 2 {
		t.Errorf("Len = %d", canon.Len())
	}
	canon.Add("U.S.", "United States")
	if canon.Apply("u.s.") != "United States" {
		t.Error("Add + case-insensitive Apply failed")
	}
	if canon.Apply("France") != "France" {
		t.Error("unknown values pass through")
	}
}

func TestSplitList(t *testing.T) {
	got := SplitList("- Paris\n- Rome\n- Paris\n- London")
	if len(got) != 3 || got[0] != "Paris" || got[2] != "London" {
		t.Errorf("SplitList dedup = %v", got)
	}
	got = SplitList("Paris, Rome, London")
	if len(got) != 3 {
		t.Errorf("comma list = %v", got)
	}
	got = SplitList("Here are some cities:\n- Paris\n- Rome")
	if len(got) != 2 || got[0] != "Paris" {
		t.Errorf("chatty prefix should be dropped: %v", got)
	}
	if got := SplitList(""); got != nil {
		t.Errorf("empty = %v", got)
	}
	got = SplitList("Unknown")
	if len(got) != 0 {
		t.Errorf("Unknown = %v", got)
	}
}

func TestKeyUnknown(t *testing.T) {
	c := New(DefaultOptions())
	if got := c.Key("n/a"); got != "" {
		t.Errorf("Key(n/a) = %q", got)
	}
	if got := c.Key("- Rome,"); got != "Rome" {
		t.Errorf("Key = %q", got)
	}
}
