package eval

import (
	"math"
	"testing"

	"repro/internal/clean"
	"repro/internal/schema"
	"repro/internal/value"
)

// TestCardinalityPaperExample reproduces the worked example from
// Section 5: |R_D| = 3, |R_M| = 1 → f = 6/4 = 1.5.
func TestCardinalityPaperExample(t *testing.T) {
	if f := CardinalityRatio(3, 1); f != 1.5 {
		t.Errorf("f = %v, want 1.5", f)
	}
	if d := CardinalityDiffPercent(3, 1); d != -50 {
		t.Errorf("1-f%% = %v, want -50", d)
	}
}

func TestCardinalityBounds(t *testing.T) {
	if f := CardinalityRatio(5, 5); f != 1 {
		t.Errorf("equal cardinalities: f = %v", f)
	}
	if d := CardinalityDiffPercent(5, 10); d <= 0 {
		t.Errorf("extra rows should be positive: %v", d)
	}
	if f := CardinalityRatio(0, 0); f != 1 {
		t.Errorf("empty/empty: f = %v", f)
	}
	// f stays within [0, 2].
	for _, pair := range [][2]int{{1, 100}, {100, 1}, {0, 7}, {7, 0}} {
		f := CardinalityRatio(pair[0], pair[1])
		if f < 0 || f > 2 {
			t.Errorf("f(%v) = %v out of [0,2]", pair, f)
		}
	}
}

func TestMatchCellNumericTolerance(t *testing.T) {
	opts := DefaultCellOptions()
	if !MatchCell(value.Int(100), value.Int(104), opts) {
		t.Error("4% error is within tolerance")
	}
	if MatchCell(value.Int(100), value.Int(106), opts) {
		t.Error("6% error is out of tolerance")
	}
	if !MatchCell(value.Float(2.0), value.Int(2), opts) {
		t.Error("kind mismatch with equal numbers should match")
	}
	if !MatchCell(value.Int(0), value.Int(0), opts) {
		t.Error("zero matches zero")
	}
	if MatchCell(value.Int(0), value.Int(1), opts) {
		t.Error("zero does not match one")
	}
}

func TestMatchCellNumericText(t *testing.T) {
	opts := DefaultCellOptions()
	if !MatchCell(value.Int(2700000), value.Text("2.7 million"), opts) {
		t.Error("numeric surface form should match through parsing")
	}
	if MatchCell(value.Int(2700000), value.Text("nonsense"), opts) {
		t.Error("garbage must not match a number")
	}
}

func TestMatchCellStringsAndDates(t *testing.T) {
	opts := DefaultCellOptions()
	if !MatchCell(value.Text("Rome"), value.Text("  rome "), opts) {
		t.Error("strings match case-insensitively after trimming")
	}
	d1, d2 := value.Date(1961, 5, 8), value.Date(1961, 5, 9)
	if MatchCell(d1, d2, opts) {
		t.Error("dates must match exactly")
	}
	if !MatchCell(d1, value.Date(1961, 5, 8), opts) {
		t.Error("equal dates match")
	}
	if !MatchCell(value.Null(), value.Null(), opts) {
		t.Error("NULL matches NULL in content scoring")
	}
	if MatchCell(value.Text("x"), value.Null(), opts) {
		t.Error("NULL does not match a value")
	}
}

func TestMatchCellCanonicalizer(t *testing.T) {
	opts := DefaultCellOptions()
	opts.Canon = clean.NewCanonicalizer(map[string]string{"IT": "ITA", "usa": "United States"})
	if !MatchCell(value.Text("ITA"), value.Text("IT"), opts) {
		t.Error("canonicalizer should map IT to ITA")
	}
	if !MatchCell(value.Text("United States"), value.Text("USA"), opts) {
		t.Error("canonicalizer should map USA")
	}
}

func rel(cols int, rows ...[]value.Value) *schema.Relation {
	s := schema.New()
	for i := 0; i < cols; i++ {
		s.Columns = append(s.Columns, schema.Column{Name: string(rune('a' + i)), Type: value.KindString})
	}
	r := schema.NewRelation(s)
	for _, row := range rows {
		r.Append(schema.Tuple(row))
	}
	return r
}

func TestMatchContentPerfect(t *testing.T) {
	truth := rel(2,
		[]value.Value{value.Text("Rome"), value.Int(1)},
		[]value.Value{value.Text("Paris"), value.Int(2)},
	)
	res := MatchContent(truth, truth.Clone(), DefaultCellOptions())
	if res.Percent() != 100 || res.MatchedRows != 2 {
		t.Errorf("perfect match = %+v", res)
	}
}

func TestMatchContentPartialAndOrderInsensitive(t *testing.T) {
	truth := rel(2,
		[]value.Value{value.Text("Rome"), value.Int(1)},
		[]value.Value{value.Text("Paris"), value.Int(2)},
	)
	// Rows permuted, one cell wrong.
	got := rel(2,
		[]value.Value{value.Text("Paris"), value.Int(9)},
		[]value.Value{value.Text("Rome"), value.Int(1)},
	)
	res := MatchContent(truth, got, DefaultCellOptions())
	if res.MatchedCells != 3 || res.TotalCells != 4 {
		t.Errorf("partial = %+v", res)
	}
	if math.Abs(res.Percent()-75) > 1e-9 {
		t.Errorf("percent = %v", res.Percent())
	}
}

func TestMatchContentNoDoubleUse(t *testing.T) {
	truth := rel(1,
		[]value.Value{value.Text("Rome")},
		[]value.Value{value.Text("Rome")},
	)
	got := rel(1, []value.Value{value.Text("Rome")})
	res := MatchContent(truth, got, DefaultCellOptions())
	if res.MatchedCells != 1 {
		t.Errorf("one result row must match at most one truth row: %+v", res)
	}
}

func TestMatchContentMissingRows(t *testing.T) {
	truth := rel(1,
		[]value.Value{value.Text("a")},
		[]value.Value{value.Text("b")},
		[]value.Value{value.Text("c")},
		[]value.Value{value.Text("d")},
	)
	got := rel(1, []value.Value{value.Text("a")})
	res := MatchContent(truth, got, DefaultCellOptions())
	if res.Percent() != 25 {
		t.Errorf("missing rows count against the score: %v", res.Percent())
	}
}

func TestMatchContentEmpty(t *testing.T) {
	truth := rel(1)
	got := rel(1, []value.Value{value.Text("x")})
	res := MatchContent(truth, got, DefaultCellOptions())
	if res.Percent() != 0 {
		t.Errorf("empty truth = %v", res.Percent())
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) = 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}
