// Package eval implements the paper's two evaluation dimensions
// (Section 5): result cardinality relative to the ground truth, and
// cell-value content matching with tuple mapping and a 5% relative-error
// tolerance for numbers.
package eval

import (
	"math"
	"strings"

	"repro/internal/clean"
	"repro/internal/schema"
	"repro/internal/value"
)

// CardinalityRatio computes f = 2·|R_D| / (|R_D| + |R_M|); f = 1 when the
// cardinalities agree, > 1 when the method returned fewer tuples than the
// ground truth.
func CardinalityRatio(rd, rm int) float64 {
	if rd+rm == 0 {
		return 1
	}
	return 2 * float64(rd) / float64(rd+rm)
}

// CardinalityDiffPercent reports 1−f as a percentage (Table 1's metric):
// negative when the method misses tuples, positive when it produces extra.
func CardinalityDiffPercent(rd, rm int) float64 {
	return (1 - CardinalityRatio(rd, rm)) * 100
}

// CellOptions configure content matching.
type CellOptions struct {
	// NumericTolerance is the maximum relative error for a numeric cell to
	// count as correct (the paper uses 5%).
	NumericTolerance float64
	// Canon, when non-nil, maps alias spellings to canonical ones before
	// comparing strings — the automation of the paper's manual tuple
	// mapping, which a human would do implicitly ("USA" is "United
	// States").
	Canon *clean.Canonicalizer
}

// DefaultCellOptions matches the paper: 5% tolerance, no canonicalizer.
func DefaultCellOptions() CellOptions { return CellOptions{NumericTolerance: 0.05} }

// MatchCell reports whether a result cell matches a ground-truth cell.
func MatchCell(truth, got value.Value, opts CellOptions) bool {
	if truth.IsNull() {
		return got.IsNull()
	}
	if got.IsNull() {
		return false
	}
	tf, tNum := truth.Numeric()
	gf, gNum := got.Numeric()
	// A numeric truth may come back as text ("2.7 million"); parse it.
	if tNum && !gNum && got.Kind() == value.KindString {
		if f, ok := clean.ParseNumber(got.AsString()); ok {
			gf, gNum = f, true
		}
	}
	if tNum && gNum {
		if truth.Kind() == value.KindDate || got.Kind() == value.KindDate {
			// Dates must match the day exactly.
			return tf == gf
		}
		if tf == 0 {
			return gf == 0
		}
		return math.Abs(gf-tf)/math.Abs(tf) <= opts.NumericTolerance
	}
	ts, gs := normString(truth.String(), opts), normString(got.String(), opts)
	return ts == gs
}

func normString(s string, opts CellOptions) string {
	s = strings.TrimSpace(s)
	if opts.Canon != nil {
		s = opts.Canon.Apply(s)
	}
	return strings.ToLower(s)
}

// ContentResult is the outcome of matching one result against one ground
// truth.
type ContentResult struct {
	TotalCells   int // cells in the ground truth (rows × columns)
	MatchedCells int
	MatchedRows  int // rows with every cell matched
}

// Percent is the cell-match percentage (Table 2's metric).
func (c ContentResult) Percent() float64 {
	if c.TotalCells == 0 {
		return 0
	}
	return 100 * float64(c.MatchedCells) / float64(c.TotalCells)
}

// MatchContent maps result tuples onto ground-truth tuples greedily (each
// result row used at most once, best match first) and counts matching
// cells. Column order must agree; the engines guarantee this for R_M
// because the output schema is fixed by construction, and the QA parser
// aligns to the expected schema.
func MatchContent(truth, got *schema.Relation, opts CellOptions) ContentResult {
	res := ContentResult{}
	cols := truth.Schema.Len()
	res.TotalCells = len(truth.Rows) * cols
	if cols == 0 || len(truth.Rows) == 0 {
		return res
	}

	used := make([]bool, len(got.Rows))
	for _, trow := range truth.Rows {
		bestIdx, bestScore := -1, 0
		for gi, grow := range got.Rows {
			if used[gi] || len(grow) < cols {
				continue
			}
			score := 0
			for c := 0; c < cols; c++ {
				if MatchCell(trow[c], grow[c], opts) {
					score++
				}
			}
			if score > bestScore {
				bestScore, bestIdx = score, gi
			}
		}
		if bestIdx >= 0 {
			used[bestIdx] = true
			res.MatchedCells += bestScore
			if bestScore == cols {
				res.MatchedRows++
			}
		}
	}
	return res
}

// Mean averages a slice; it returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
