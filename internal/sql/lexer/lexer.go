// Package lexer tokenizes SQL text for the Galois parser.
package lexer

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/sql/token"
)

// Lexer scans SQL text into tokens. It is not safe for concurrent use.
type Lexer struct {
	src []rune
	pos int // index of next rune to read
}

// New returns a lexer over the given SQL text.
func New(src string) *Lexer { return &Lexer{src: []rune(src)} }

// Tokenize scans the whole input and returns the token stream, ending with
// an EOF token. It returns an error for unterminated strings or stray
// characters.
func Tokenize(src string) ([]token.Token, error) {
	l := New(src)
	var out []token.Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Type == token.EOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() rune {
	r := l.peek()
	l.pos++
	return r
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		for unicode.IsSpace(l.peek()) {
			l.pos++
		}
		// -- line comments
		if l.peek() == '-' && l.peekAt(1) == '-' {
			for l.peek() != '\n' && l.peek() != 0 {
				l.pos++
			}
			continue
		}
		// /* block comments */
		if l.peek() == '/' && l.peekAt(1) == '*' {
			l.pos += 2
			for !(l.peek() == '*' && l.peekAt(1) == '/') && l.peek() != 0 {
				l.pos++
			}
			if l.peek() != 0 {
				l.pos += 2
			}
			continue
		}
		return
	}
}

// Next returns the next token.
func (l *Lexer) Next() (token.Token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	r := l.peek()
	switch {
	case r == 0:
		return token.Token{Type: token.EOF, Pos: start}, nil
	case isIdentStart(r):
		return l.lexIdent(start), nil
	case unicode.IsDigit(r) || (r == '.' && unicode.IsDigit(l.peekAt(1))):
		return l.lexNumber(start)
	case r == '\'':
		return l.lexString(start)
	case r == '"' || r == '`':
		return l.lexQuotedIdent(start, r)
	}
	l.pos++
	mk := func(t token.Type, lit string) (token.Token, error) {
		return token.Token{Type: t, Literal: lit, Pos: start}, nil
	}
	switch r {
	case ',':
		return mk(token.Comma, ",")
	case '.':
		return mk(token.Dot, ".")
	case ';':
		return mk(token.Semicolon, ";")
	case '(':
		return mk(token.LParen, "(")
	case ')':
		return mk(token.RParen, ")")
	case '*':
		return mk(token.Star, "*")
	case '+':
		return mk(token.Plus, "+")
	case '-':
		return mk(token.Minus, "-")
	case '/':
		return mk(token.Slash, "/")
	case '%':
		return mk(token.Percent, "%")
	case '=':
		return mk(token.Eq, "=")
	case '!':
		if l.peek() == '=' {
			l.pos++
			return mk(token.NotEq, "!=")
		}
		return token.Token{Type: token.Illegal, Literal: "!", Pos: start},
			fmt.Errorf("sql: unexpected character %q at offset %d", r, start)
	case '<':
		switch l.peek() {
		case '=':
			l.pos++
			return mk(token.LtEq, "<=")
		case '>':
			l.pos++
			return mk(token.NotEq, "<>")
		}
		return mk(token.Lt, "<")
	case '>':
		if l.peek() == '=' {
			l.pos++
			return mk(token.GtEq, ">=")
		}
		return mk(token.Gt, ">")
	}
	return token.Token{Type: token.Illegal, Literal: string(r), Pos: start},
		fmt.Errorf("sql: unexpected character %q at offset %d", r, start)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *Lexer) lexIdent(start int) token.Token {
	for isIdentPart(l.peek()) {
		l.pos++
	}
	lit := string(l.src[start:l.pos])
	if token.IsKeyword(lit) {
		return token.Token{Type: token.Keyword, Literal: strings.ToUpper(lit), Pos: start}
	}
	return token.Token{Type: token.Ident, Literal: lit, Pos: start}
}

func (l *Lexer) lexNumber(start int) (token.Token, error) {
	seenDot := false
	for {
		r := l.peek()
		if unicode.IsDigit(r) {
			l.pos++
			continue
		}
		if r == '.' && !seenDot && unicode.IsDigit(l.peekAt(1)) {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	// Exponent part: 1e9, 2.5E-3.
	if r := l.peek(); r == 'e' || r == 'E' {
		save := l.pos
		l.pos++
		if l.peek() == '+' || l.peek() == '-' {
			l.pos++
		}
		if unicode.IsDigit(l.peek()) {
			for unicode.IsDigit(l.peek()) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	return token.Token{Type: token.Number, Literal: string(l.src[start:l.pos]), Pos: start}, nil
}

func (l *Lexer) lexString(start int) (token.Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for {
		r := l.advance()
		switch r {
		case 0:
			return token.Token{Type: token.Illegal, Pos: start},
				fmt.Errorf("sql: unterminated string literal at offset %d", start)
		case '\'':
			if l.peek() == '\'' { // escaped quote ''
				b.WriteRune('\'')
				l.pos++
				continue
			}
			return token.Token{Type: token.String, Literal: b.String(), Pos: start}, nil
		default:
			b.WriteRune(r)
		}
	}
}

func (l *Lexer) lexQuotedIdent(start int, quote rune) (token.Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for {
		r := l.advance()
		switch r {
		case 0:
			return token.Token{Type: token.Illegal, Pos: start},
				fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
		case quote:
			return token.Token{Type: token.Ident, Literal: b.String(), Pos: start}, nil
		default:
			b.WriteRune(r)
		}
	}
}
