package lexer

import (
	"testing"

	"repro/internal/sql/token"
)

func kinds(t *testing.T, src string) []token.Type {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]token.Type, len(toks))
	for i, tok := range toks {
		out[i] = tok.Type
	}
	return out
}

func TestBasicSelect(t *testing.T) {
	toks, err := Tokenize("SELECT c.name FROM city c WHERE c.population > 1000000")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		tt  token.Type
		lit string
	}{
		{token.Keyword, "SELECT"}, {token.Ident, "c"}, {token.Dot, "."},
		{token.Ident, "name"}, {token.Keyword, "FROM"}, {token.Ident, "city"},
		{token.Ident, "c"}, {token.Keyword, "WHERE"}, {token.Ident, "c"},
		{token.Dot, "."}, {token.Ident, "population"}, {token.Gt, ">"},
		{token.Number, "1000000"}, {token.EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Type != w.tt || toks[i].Literal != w.lit {
			t.Errorf("token %d = {%v %q}, want {%v %q}", i, toks[i].Type, toks[i].Literal, w.tt, w.lit)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("select From WhErE")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:3] {
		if tok.Type != token.Keyword {
			t.Errorf("%q should lex as keyword", tok.Literal)
		}
	}
	if toks[0].Literal != "SELECT" {
		t.Errorf("keywords are upper-cased, got %q", toks[0].Literal)
	}
}

func TestStrings(t *testing.T) {
	toks, err := Tokenize("'Europe' 'O''Brien'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Literal != "Europe" {
		t.Errorf("string literal = %q", toks[0].Literal)
	}
	if toks[1].Literal != "O'Brien" {
		t.Errorf("escaped quote literal = %q", toks[1].Literal)
	}
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Error("unterminated string must error")
	}
}

func TestQuotedIdent(t *testing.T) {
	toks, err := Tokenize(`"weird name" ` + "`another`")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != token.Ident || toks[0].Literal != "weird name" {
		t.Errorf("quoted ident = %v %q", toks[0].Type, toks[0].Literal)
	}
	if toks[1].Type != token.Ident || toks[1].Literal != "another" {
		t.Errorf("backquoted ident = %v %q", toks[1].Type, toks[1].Literal)
	}
}

func TestNumbers(t *testing.T) {
	cases := []string{"0", "42", "3.14", ".5", "1e9", "2.5E-3", "7e+2"}
	for _, c := range cases {
		toks, err := Tokenize(c)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", c, err)
		}
		if toks[0].Type != token.Number || toks[0].Literal != c {
			t.Errorf("Tokenize(%q) = {%v %q}", c, toks[0].Type, toks[0].Literal)
		}
	}
	// "1e" is a number followed by an identifier, not an error.
	toks, err := Tokenize("1e")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Literal != "1" || toks[1].Literal != "e" {
		t.Errorf("partial exponent: %v", toks)
	}
}

func TestOperators(t *testing.T) {
	got := kinds(t, "= != <> < <= > >= + - * / % ( ) , ;")
	want := []token.Type{
		token.Eq, token.NotEq, token.NotEq, token.Lt, token.LtEq,
		token.Gt, token.GtEq, token.Plus, token.Minus, token.Star,
		token.Slash, token.Percent, token.LParen, token.RParen,
		token.Comma, token.Semicolon, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokenize("SELECT -- a comment\n 1 /* block\ncomment */ + 2")
	if err != nil {
		t.Fatal(err)
	}
	var lits []string
	for _, tok := range toks {
		if tok.Type != token.EOF {
			lits = append(lits, tok.Literal)
		}
	}
	if len(lits) != 4 || lits[0] != "SELECT" || lits[1] != "1" || lits[2] != "+" || lits[3] != "2" {
		t.Errorf("comments not skipped: %v", lits)
	}
}

func TestBadCharacter(t *testing.T) {
	if _, err := Tokenize("SELECT @"); err == nil {
		t.Error("stray @ must error")
	}
	if _, err := Tokenize("a ! b"); err == nil {
		t.Error("bare ! must error")
	}
}

func TestUnicodeIdent(t *testing.T) {
	toks, err := Tokenize("ciudad_año")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != token.Ident || toks[0].Literal != "ciudad_año" {
		t.Errorf("unicode identifier = %v %q", toks[0].Type, toks[0].Literal)
	}
}

func TestIsKeywordHelpers(t *testing.T) {
	if !token.IsKeyword("select") || token.IsKeyword("city") {
		t.Error("IsKeyword misbehaves")
	}
	if !token.IsAggregateName("avg") || token.IsAggregateName("upper") {
		t.Error("IsAggregateName misbehaves")
	}
}
