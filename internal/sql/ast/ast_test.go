package ast

import (
	"testing"

	"repro/internal/value"
)

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&ColumnRef{Table: "c", Name: "name"}, "c.name"},
		{&ColumnRef{Name: "name"}, "name"},
		{&Literal{Val: value.Int(5)}, "5"},
		{&Literal{Val: value.Text("x")}, "'x'"},
		{&Star{}, "*"},
		{&Star{Table: "t"}, "t.*"},
		{&Binary{Op: ">", Left: &ColumnRef{Name: "a"}, Right: &Literal{Val: value.Int(1)}}, "a > 1"},
		{&Unary{Op: "NOT", Expr: &ColumnRef{Name: "a"}}, "NOT (a)"},
		{&Unary{Op: "-", Expr: &ColumnRef{Name: "a"}}, "-a"},
		{&FuncCall{Name: "COUNT", Args: []Expr{&Star{}}}, "COUNT(*)"},
		{&FuncCall{Name: "COUNT", Distinct: true, Args: []Expr{&ColumnRef{Name: "x"}}}, "COUNT(DISTINCT x)"},
		{&InList{Expr: &ColumnRef{Name: "a"}, List: []Expr{&Literal{Val: value.Int(1)}}, Not: true}, "a NOT IN (1)"},
		{&Between{Expr: &ColumnRef{Name: "a"}, Lo: &Literal{Val: value.Int(1)}, Hi: &Literal{Val: value.Int(2)}}, "a BETWEEN 1 AND 2"},
		{&Like{Expr: &ColumnRef{Name: "a"}, Pattern: &Literal{Val: value.Text("x%")}}, "a LIKE 'x%'"},
		{&IsNull{Expr: &ColumnRef{Name: "a"}}, "a IS NULL"},
		{&IsNull{Expr: &ColumnRef{Name: "a"}, Not: true}, "a IS NOT NULL"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestLogicalParenthesization(t *testing.T) {
	// (a OR b) AND c must keep parentheses on the OR.
	e := &Binary{
		Op:    "AND",
		Left:  &Binary{Op: "OR", Left: &ColumnRef{Name: "a"}, Right: &ColumnRef{Name: "b"}},
		Right: &ColumnRef{Name: "c"},
	}
	if got := e.String(); got != "(a OR b) AND c" {
		t.Errorf("String() = %q", got)
	}
}

func TestWalkAndColumnRefs(t *testing.T) {
	e := &Binary{
		Op:    "AND",
		Left:  &Binary{Op: ">", Left: &ColumnRef{Table: "c", Name: "population"}, Right: &Literal{Val: value.Int(1)}},
		Right: &Like{Expr: &ColumnRef{Table: "c", Name: "name"}, Pattern: &Literal{Val: value.Text("a%")}},
	}
	refs := ColumnRefs(e)
	if len(refs) != 2 || refs[0].Name != "population" || refs[1].Name != "name" {
		t.Errorf("ColumnRefs = %v", refs)
	}

	visited := 0
	Walk(e, func(Expr) bool { visited++; return true })
	if visited != 7 {
		t.Errorf("Walk visited %d nodes, want 7", visited)
	}

	// Pruning stops descent.
	visited = 0
	Walk(e, func(x Expr) bool {
		visited++
		_, isBinary := x.(*Binary)
		return isBinary
	})
	if visited != 5 {
		t.Errorf("pruned walk visited %d, want 5", visited)
	}
}

func TestHasAggregate(t *testing.T) {
	agg := &FuncCall{Name: "AVG", Args: []Expr{&ColumnRef{Name: "x"}}}
	if !HasAggregate(&Binary{Op: ">", Left: agg, Right: &Literal{Val: value.Int(1)}}) {
		t.Error("nested aggregate not found")
	}
	if HasAggregate(&ColumnRef{Name: "x"}) {
		t.Error("plain column is not an aggregate")
	}
	if !(&FuncCall{Name: "FIRST", Args: []Expr{&ColumnRef{Name: "x"}}}).IsAggregate() {
		t.Error("FIRST is an (internal) aggregate")
	}
	if (&FuncCall{Name: "UPPER"}).IsAggregate() {
		t.Error("UPPER is not an aggregate")
	}
}

func TestSelectString(t *testing.T) {
	sel := &Select{
		Distinct: true,
		Items:    []SelectItem{{Expr: &ColumnRef{Table: "c", Name: "name"}, Alias: "n"}},
		From: []TableRef{
			{Table: "city", Alias: "c"},
			{Table: "mayor", Alias: "m", Join: JoinInner, On: &Binary{Op: "=", Left: &ColumnRef{Table: "c", Name: "mayor"}, Right: &ColumnRef{Table: "m", Name: "name"}}},
		},
		Where:   &Binary{Op: ">", Left: &ColumnRef{Table: "c", Name: "population"}, Right: &Literal{Val: value.Int(10)}},
		OrderBy: []OrderItem{{Expr: &ColumnRef{Name: "n"}, Desc: true}},
		Limit:   5,
	}
	want := "SELECT DISTINCT c.name AS n FROM city c JOIN mayor m ON c.mayor = m.name WHERE c.population > 10 ORDER BY n DESC LIMIT 5"
	if got := sel.String(); got != want {
		t.Errorf("Select.String()\n got %q\nwant %q", got, want)
	}
}

func TestTableRefString(t *testing.T) {
	r := TableRef{Source: "LLM", Table: "country", Alias: "c"}
	if got := r.String(); got != "LLM.country c" {
		t.Errorf("TableRef.String() = %q", got)
	}
	if r.Binding() != "c" {
		t.Errorf("Binding = %q", r.Binding())
	}
	r2 := TableRef{Table: "city"}
	if r2.Binding() != "city" {
		t.Errorf("unaliased Binding = %q", r2.Binding())
	}
}

func TestCaseString(t *testing.T) {
	c := &Case{
		Whens: []CaseWhen{{Cond: &Binary{Op: ">", Left: &ColumnRef{Name: "a"}, Right: &Literal{Val: value.Int(1)}}, Result: &Literal{Val: value.Text("big")}}},
		Else:  &Literal{Val: value.Text("small")},
	}
	want := "CASE WHEN a > 1 THEN 'big' ELSE 'small' END"
	if got := c.String(); got != want {
		t.Errorf("Case.String() = %q", got)
	}
}
