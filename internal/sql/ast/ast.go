// Package ast defines the abstract syntax tree produced by the SQL parser.
// Expression nodes render themselves back to SQL text via String; the
// prompt generator relies on this to turn plan conditions into natural
// language fragments.
package ast

import (
	"strings"

	"repro/internal/value"
)

// Expr is any SQL expression node.
type Expr interface {
	String() string
	exprNode()
}

// ColumnRef references a column, optionally qualified: Table.Name.
type ColumnRef struct {
	Table string
	Name  string
}

func (c *ColumnRef) exprNode() {}

// String renders the (possibly qualified) reference.
func (c *ColumnRef) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Literal is a constant value.
type Literal struct {
	Val value.Value
}

func (l *Literal) exprNode() {}

// String renders the SQL literal form.
func (l *Literal) String() string { return l.Val.SQLLiteral() }

// Star is the * in SELECT * or COUNT(*); Table is set for t.*.
type Star struct {
	Table string
}

func (s *Star) exprNode() {}

// String renders "*" or "t.*".
func (s *Star) String() string {
	if s.Table == "" {
		return "*"
	}
	return s.Table + ".*"
}

// Binary is a binary operation. Op is one of
// = != < <= > >= + - * / % AND OR.
type Binary struct {
	Op    string
	Left  Expr
	Right Expr
}

func (b *Binary) exprNode() {}

// String renders the infix form, parenthesizing logical operands.
func (b *Binary) String() string {
	l, r := b.Left.String(), b.Right.String()
	if b.Op == "AND" || b.Op == "OR" {
		if _, ok := b.Left.(*Binary); ok {
			if lb := b.Left.(*Binary); lb.Op == "AND" || lb.Op == "OR" {
				l = "(" + l + ")"
			}
		}
		if _, ok := b.Right.(*Binary); ok {
			if rb := b.Right.(*Binary); rb.Op == "AND" || rb.Op == "OR" {
				r = "(" + r + ")"
			}
		}
	}
	return l + " " + b.Op + " " + r
}

// Unary is NOT expr or -expr.
type Unary struct {
	Op   string // "NOT" or "-"
	Expr Expr
}

func (u *Unary) exprNode() {}

// String renders the prefix form.
func (u *Unary) String() string {
	if u.Op == "NOT" {
		return "NOT (" + u.Expr.String() + ")"
	}
	return u.Op + u.Expr.String()
}

// FuncCall is a function application; aggregates (COUNT, SUM, AVG, MIN,
// MAX) and scalar functions share this node. Distinct marks
// COUNT(DISTINCT x).
type FuncCall struct {
	Name     string // upper-cased
	Distinct bool
	Args     []Expr
}

func (f *FuncCall) exprNode() {}

// String renders name(args).
func (f *FuncCall) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	inner := strings.Join(parts, ", ")
	if f.Distinct {
		inner = "DISTINCT " + inner
	}
	return f.Name + "(" + inner + ")"
}

// IsAggregate reports whether the call is one of the five SQL aggregates
// or the engine-internal FIRST (the any-value aggregate implicit GROUP BY
// columns compile to).
func (f *FuncCall) IsAggregate() bool {
	switch f.Name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "FIRST":
		return true
	}
	return false
}

// InList is expr [NOT] IN (e1, e2, ...).
type InList struct {
	Expr Expr
	List []Expr
	Not  bool
}

func (i *InList) exprNode() {}

// String renders the IN form.
func (i *InList) String() string {
	parts := make([]string, len(i.List))
	for j, e := range i.List {
		parts[j] = e.String()
	}
	op := "IN"
	if i.Not {
		op = "NOT IN"
	}
	return i.Expr.String() + " " + op + " (" + strings.Join(parts, ", ") + ")"
}

// Between is expr [NOT] BETWEEN lo AND hi.
type Between struct {
	Expr Expr
	Lo   Expr
	Hi   Expr
	Not  bool
}

func (b *Between) exprNode() {}

// String renders the BETWEEN form.
func (b *Between) String() string {
	op := "BETWEEN"
	if b.Not {
		op = "NOT BETWEEN"
	}
	return b.Expr.String() + " " + op + " " + b.Lo.String() + " AND " + b.Hi.String()
}

// Like is expr [NOT] LIKE pattern.
type Like struct {
	Expr    Expr
	Pattern Expr
	Not     bool
}

func (l *Like) exprNode() {}

// String renders the LIKE form.
func (l *Like) String() string {
	op := "LIKE"
	if l.Not {
		op = "NOT LIKE"
	}
	return l.Expr.String() + " " + op + " " + l.Pattern.String()
}

// IsNull is expr IS [NOT] NULL.
type IsNull struct {
	Expr Expr
	Not  bool
}

func (i *IsNull) exprNode() {}

// String renders the IS NULL form.
func (i *IsNull) String() string {
	if i.Not {
		return i.Expr.String() + " IS NOT NULL"
	}
	return i.Expr.String() + " IS NULL"
}

// CaseWhen is one WHEN cond THEN result arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

// Case is CASE WHEN ... [ELSE ...] END (searched form only).
type Case struct {
	Whens []CaseWhen
	Else  Expr
}

func (c *Case) exprNode() {}

// String renders the CASE form.
func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		b.WriteString(" WHEN ")
		b.WriteString(w.Cond.String())
		b.WriteString(" THEN ")
		b.WriteString(w.Result.String())
	}
	if c.Else != nil {
		b.WriteString(" ELSE ")
		b.WriteString(c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// SelectItem is one output column of a SELECT: an expression with an
// optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// String renders "expr AS alias".
func (s SelectItem) String() string {
	if s.Alias == "" {
		return s.Expr.String()
	}
	return s.Expr.String() + " AS " + s.Alias
}

// JoinType distinguishes the FROM-clause join forms.
type JoinType uint8

// Join kinds. Comma-separated FROM items parse as JoinCross.
const (
	JoinNone JoinType = iota // first FROM item
	JoinCross
	JoinInner
	JoinLeft
)

// String names the join kind.
func (j JoinType) String() string {
	switch j {
	case JoinCross:
		return "CROSS JOIN"
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	default:
		return ""
	}
}

// TableRef is one FROM item. Source optionally names the engine the table
// binds to ("LLM" or "DB", from LLM.country-style qualification); empty
// means resolve via the default binding.
type TableRef struct {
	Source string // "" | "LLM" | "DB"
	Table  string
	Alias  string
	Join   JoinType
	On     Expr // nil for JoinNone/JoinCross
}

// Binding returns the alias if present, else the table name: the name by
// which columns reference this relation.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// String renders the FROM item.
func (t TableRef) String() string {
	var b strings.Builder
	if t.Join != JoinNone && t.Join != JoinCross {
		b.WriteString(t.Join.String())
		b.WriteByte(' ')
	}
	if t.Source != "" {
		b.WriteString(t.Source)
		b.WriteByte('.')
	}
	b.WriteString(t.Table)
	if t.Alias != "" {
		b.WriteByte(' ')
		b.WriteString(t.Alias)
	}
	if t.On != nil {
		b.WriteString(" ON ")
		b.WriteString(t.On.String())
	}
	return b.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Statement is any parsed SQL statement.
type Statement interface{ stmtNode() }

// Select is a SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int // 0 when absent
}

func (s *Select) stmtNode() {}

// String renders the statement back to SQL.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				if f.Join == JoinCross {
					b.WriteString(", ")
				} else {
					b.WriteByte(' ')
				}
			}
			b.WriteString(f.String())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(itoa(s.Limit))
	}
	if s.Offset > 0 {
		b.WriteString(" OFFSET ")
		b.WriteString(itoa(s.Offset))
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       value.Kind
	PrimaryKey bool
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

func (c *CreateTable) stmtNode() {}

// Insert is INSERT INTO t [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // empty = positional
	Rows    [][]Expr
}

func (i *Insert) stmtNode() {}

// Explain is EXPLAIN [ANALYZE] SELECT ...: show the optimizer's chosen
// plan with its cost estimates; ANALYZE additionally executes the query
// and annotates the plan with actual per-operator prompt and row counts.
type Explain struct {
	Analyze bool
	Stmt    *Select
}

func (e *Explain) stmtNode() {}

// String renders the statement back to SQL.
func (e *Explain) String() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Stmt.String()
	}
	return "EXPLAIN " + e.Stmt.String()
}

// Walk visits e and every sub-expression in depth-first order. The visitor
// returns false to prune the subtree.
func Walk(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch n := e.(type) {
	case *Binary:
		Walk(n.Left, visit)
		Walk(n.Right, visit)
	case *Unary:
		Walk(n.Expr, visit)
	case *FuncCall:
		for _, a := range n.Args {
			Walk(a, visit)
		}
	case *InList:
		Walk(n.Expr, visit)
		for _, a := range n.List {
			Walk(a, visit)
		}
	case *Between:
		Walk(n.Expr, visit)
		Walk(n.Lo, visit)
		Walk(n.Hi, visit)
	case *Like:
		Walk(n.Expr, visit)
		Walk(n.Pattern, visit)
	case *IsNull:
		Walk(n.Expr, visit)
	case *Case:
		for _, w := range n.Whens {
			Walk(w.Cond, visit)
			Walk(w.Result, visit)
		}
		if n.Else != nil {
			Walk(n.Else, visit)
		}
	}
}

// ColumnRefs returns every column reference in e, in visit order.
func ColumnRefs(e Expr) []*ColumnRef {
	var refs []*ColumnRef
	Walk(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			refs = append(refs, c)
		}
		return true
	})
	return refs
}

// HasAggregate reports whether e contains an aggregate function call.
func HasAggregate(e Expr) bool {
	found := false
	Walk(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsAggregate() {
			found = true
			return false
		}
		return true
	})
	return found
}
