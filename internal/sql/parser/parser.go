// Package parser implements a recursive-descent parser for the SQL dialect
// Galois executes: SELECT with projections, expressions and aggregates,
// multi-table FROM (comma and ANSI joins), WHERE, GROUP BY, HAVING,
// ORDER BY, LIMIT/OFFSET, plus CREATE TABLE and INSERT for loading the
// ground-truth store.
//
// FROM items may carry a source qualifier — "LLM.country c" or
// "DB.Employees e" — selecting which engine materializes the relation, as
// in the paper's hybrid query example.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sql/ast"
	"repro/internal/sql/lexer"
	"repro/internal/sql/token"
	"repro/internal/value"
)

// Parser consumes a token stream.
type Parser struct {
	toks []token.Token
	pos  int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (ast.Statement, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(token.Semicolon, "")
	if !p.at(token.EOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.cur().Literal)
	}
	return stmt, nil
}

// ParseSelect parses src and requires it to be a SELECT statement.
func ParseSelect(src string) (*ast.Select, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*ast.Select)
	if !ok {
		return nil, fmt.Errorf("sql: expected SELECT statement")
	}
	return sel, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]ast.Statement, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var stmts []ast.Statement
	for {
		for p.accept(token.Semicolon, "") {
		}
		if p.at(token.EOF, "") {
			return stmts, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
		if !p.accept(token.Semicolon, "") && !p.at(token.EOF, "") {
			return nil, p.errorf("expected ';' between statements, got %q", p.cur().Literal)
		}
	}
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Type != token.EOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches type (and literal for
// keywords).
func (p *Parser) at(tt token.Type, lit string) bool {
	t := p.cur()
	if t.Type != tt {
		return false
	}
	return lit == "" || t.Literal == lit
}

func (p *Parser) atKeyword(words ...string) bool {
	t := p.cur()
	if t.Type != token.Keyword {
		return false
	}
	for _, w := range words {
		if t.Literal == w {
			return true
		}
	}
	return false
}

func (p *Parser) accept(tt token.Type, lit string) bool {
	if p.at(tt, lit) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) acceptKeyword(word string) bool {
	if p.atKeyword(word) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(tt token.Type, lit string) (token.Token, error) {
	if p.at(tt, lit) {
		return p.next(), nil
	}
	want := lit
	if want == "" {
		want = tt.String()
	}
	return token.Token{}, p.errorf("expected %s, got %q", want, p.cur().Literal)
}

func (p *Parser) expectKeyword(word string) error {
	if p.acceptKeyword(word) {
		return nil
	}
	return p.errorf("expected %s, got %q", word, p.cur().Literal)
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) parseStatement() (ast.Statement, error) {
	switch {
	case p.atKeyword("SELECT"):
		return p.parseSelect()
	case p.atKeyword("EXPLAIN"):
		return p.parseExplain()
	case p.atKeyword("CREATE"):
		return p.parseCreateTable()
	case p.atKeyword("INSERT"):
		return p.parseInsert()
	default:
		return nil, p.errorf("expected SELECT, EXPLAIN, CREATE or INSERT, got %q", p.cur().Literal)
	}
}

func (p *Parser) parseExplain() (ast.Statement, error) {
	if err := p.expectKeyword("EXPLAIN"); err != nil {
		return nil, err
	}
	analyze := p.acceptKeyword("ANALYZE")
	if !p.atKeyword("SELECT") {
		return nil, p.errorf("EXPLAIN supports only SELECT statements, got %q", p.cur().Literal)
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &ast.Explain{Analyze: analyze, Stmt: sel}, nil
}

// ---------------------------------------------------------------- SELECT

func (p *Parser) parseSelect() (*ast.Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &ast.Select{Limit: -1}
	sel.Distinct = p.acceptKeyword("DISTINCT")
	if p.acceptKeyword("ALL") {
		sel.Distinct = false
	}

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(token.Comma, "") {
			break
		}
	}

	if p.acceptKeyword("FROM") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}

	if p.atKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(token.Comma, "") {
				break
			}
		}
	}

	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}

	if p.atKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(token.Comma, "") {
				break
			}
		}
	}

	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		sel.Offset = n
	}
	return sel, nil
}

func (p *Parser) parseIntLiteral() (int, error) {
	t, err := p.expect(token.Number, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.Literal)
	if err != nil {
		return 0, p.errorf("expected integer, got %q", t.Literal)
	}
	return n, nil
}

func (p *Parser) parseSelectItem() (ast.SelectItem, error) {
	// Bare * and t.* handled here; the expression grammar treats * as
	// multiplication.
	if p.accept(token.Star, "") {
		return ast.SelectItem{Expr: &ast.Star{}}, nil
	}
	if p.at(token.Ident, "") && p.toks[p.pos+1].Type == token.Dot && p.toks[p.pos+2].Type == token.Star {
		tbl := p.next().Literal
		p.next() // .
		p.next() // *
		return ast.SelectItem{Expr: &ast.Star{Table: tbl}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t, err := p.expect(token.Ident, "")
		if err != nil {
			return ast.SelectItem{}, err
		}
		item.Alias = t.Literal
	} else if p.at(token.Ident, "") {
		item.Alias = p.next().Literal
	}
	return item, nil
}

func (p *Parser) parseFrom() ([]ast.TableRef, error) {
	first, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	refs := []ast.TableRef{first}
	for {
		switch {
		case p.accept(token.Comma, ""):
			r, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			r.Join = ast.JoinCross
			refs = append(refs, r)
		case p.atKeyword("JOIN", "INNER", "LEFT", "CROSS"):
			jt := ast.JoinInner
			switch p.cur().Literal {
			case "LEFT":
				p.next()
				p.acceptKeyword("OUTER")
				jt = ast.JoinLeft
			case "CROSS":
				p.next()
				jt = ast.JoinCross
			case "INNER":
				p.next()
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			r, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			r.Join = jt
			if jt != ast.JoinCross {
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				r.On = on
			}
			refs = append(refs, r)
		default:
			return refs, nil
		}
	}
}

func (p *Parser) parseTableRef() (ast.TableRef, error) {
	t, err := p.expect(token.Ident, "")
	if err != nil {
		return ast.TableRef{}, err
	}
	ref := ast.TableRef{Table: t.Literal}
	// Source qualifier: LLM.country / DB.Employees.
	if up := strings.ToUpper(t.Literal); (up == "LLM" || up == "DB") && p.at(token.Dot, "") {
		p.next()
		name, err := p.expect(token.Ident, "")
		if err != nil {
			return ast.TableRef{}, err
		}
		ref.Source = up
		ref.Table = name.Literal
	}
	if p.acceptKeyword("AS") {
		a, err := p.expect(token.Ident, "")
		if err != nil {
			return ast.TableRef{}, err
		}
		ref.Alias = a.Literal
	} else if p.at(token.Ident, "") {
		ref.Alias = p.next().Literal
	}
	return ref, nil
}

// ------------------------------------------------------------ expressions

func (p *Parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (ast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (ast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(token.Eq, ""), p.at(token.NotEq, ""), p.at(token.Lt, ""),
			p.at(token.LtEq, ""), p.at(token.Gt, ""), p.at(token.GtEq, ""):
			opTok := p.next()
			op := opTok.Literal
			if opTok.Type == token.NotEq {
				op = "!="
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &ast.Binary{Op: op, Left: left, Right: right}
		case p.atKeyword("IS"):
			p.next()
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &ast.IsNull{Expr: left, Not: not}
		case p.atKeyword("IN"):
			p.next()
			list, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			left = &ast.InList{Expr: left, List: list}
		case p.atKeyword("BETWEEN"):
			p.next()
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &ast.Between{Expr: left, Lo: lo, Hi: hi}
		case p.atKeyword("LIKE"):
			p.next()
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &ast.Like{Expr: left, Pattern: pat}
		case p.atKeyword("NOT"):
			// NOT IN / NOT BETWEEN / NOT LIKE (postfix forms).
			save := p.pos
			p.next()
			switch {
			case p.acceptKeyword("IN"):
				list, err := p.parseExprList()
				if err != nil {
					return nil, err
				}
				left = &ast.InList{Expr: left, List: list, Not: true}
			case p.acceptKeyword("BETWEEN"):
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &ast.Between{Expr: left, Lo: lo, Hi: hi, Not: true}
			case p.acceptKeyword("LIKE"):
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &ast.Like{Expr: left, Pattern: pat, Not: true}
			default:
				p.pos = save
				return left, nil
			}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseExprList() ([]ast.Expr, error) {
	if _, err := p.expect(token.LParen, ""); err != nil {
		return nil, err
	}
	var list []ast.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(token.Comma, "") {
			break
		}
	}
	if _, err := p.expect(token.RParen, ""); err != nil {
		return nil, err
	}
	return list, nil
}

func (p *Parser) parseAdditive() (ast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(token.Plus, ""):
			op = "+"
		case p.accept(token.Minus, ""):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseMultiplicative() (ast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(token.Star, ""):
			op = "*"
		case p.accept(token.Slash, ""):
			op = "/"
		case p.accept(token.Percent, ""):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	if p.accept(token.Minus, "") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal immediately so constants stay simple.
		if lit, ok := e.(*ast.Literal); ok {
			switch lit.Val.Kind() {
			case value.KindInt:
				return &ast.Literal{Val: value.Int(-lit.Val.AsInt())}, nil
			case value.KindFloat:
				return &ast.Literal{Val: value.Float(-lit.Val.AsFloat())}, nil
			}
		}
		return &ast.Unary{Op: "-", Expr: e}, nil
	}
	p.accept(token.Plus, "")
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Type {
	case token.Number:
		p.next()
		if strings.ContainsAny(t.Literal, ".eE") {
			f, err := strconv.ParseFloat(t.Literal, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Literal)
			}
			return &ast.Literal{Val: value.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Literal, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Literal)
		}
		return &ast.Literal{Val: value.Int(i)}, nil
	case token.String:
		p.next()
		return &ast.Literal{Val: value.Text(t.Literal)}, nil
	case token.LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen, ""); err != nil {
			return nil, err
		}
		return e, nil
	case token.Keyword:
		switch t.Literal {
		case "NULL":
			p.next()
			return &ast.Literal{Val: value.Null()}, nil
		case "TRUE":
			p.next()
			return &ast.Literal{Val: value.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &ast.Literal{Val: value.Bool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseFuncCall(t.Literal)
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.Literal)
	case token.Ident:
		// Function call or column reference.
		if p.toks[p.pos+1].Type == token.LParen {
			name := strings.ToUpper(p.next().Literal)
			return p.parseFuncCall(name)
		}
		p.next()
		ref := &ast.ColumnRef{Name: t.Literal}
		if p.accept(token.Dot, "") {
			n, err := p.expect(token.Ident, "")
			if err != nil {
				return nil, err
			}
			ref.Table = t.Literal
			ref.Name = n.Literal
		}
		return ref, nil
	}
	return nil, p.errorf("unexpected token %q in expression", t.Literal)
}

func (p *Parser) parseFuncCall(name string) (ast.Expr, error) {
	if p.cur().Type == token.Keyword {
		p.next() // consume the aggregate keyword
	}
	if _, err := p.expect(token.LParen, ""); err != nil {
		return nil, err
	}
	call := &ast.FuncCall{Name: strings.ToUpper(name)}
	if p.accept(token.Star, "") {
		call.Args = []ast.Expr{&ast.Star{}}
	} else if !p.at(token.RParen, "") {
		call.Distinct = p.acceptKeyword("DISTINCT")
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if !p.accept(token.Comma, "") {
				break
			}
		}
	}
	if _, err := p.expect(token.RParen, ""); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *Parser) parseCase() (ast.Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &ast.Case{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.CaseWhen{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// ------------------------------------------------------------ CREATE/INSERT

func (p *Parser) parseCreateTable() (ast.Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(token.Ident, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen, ""); err != nil {
		return nil, err
	}
	ct := &ast.CreateTable{Name: name.Literal}
	for {
		col, err := p.expect(token.Ident, "")
		if err != nil {
			return nil, err
		}
		var typeName string
		switch {
		case p.at(token.Ident, ""):
			typeName = p.next().Literal
		case p.at(token.Keyword, ""):
			typeName = p.next().Literal
		default:
			return nil, p.errorf("expected type for column %q", col.Literal)
		}
		kind, err := value.ParseKind(typeName)
		if err != nil {
			return nil, p.errorf("column %q: %v", col.Literal, err)
		}
		def := ast.ColumnDef{Name: col.Literal, Type: kind}
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			def.PrimaryKey = true
		}
		ct.Columns = append(ct.Columns, def)
		if !p.accept(token.Comma, "") {
			break
		}
	}
	if _, err := p.expect(token.RParen, ""); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *Parser) parseInsert() (ast.Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(token.Ident, "")
	if err != nil {
		return nil, err
	}
	ins := &ast.Insert{Table: name.Literal}
	if p.accept(token.LParen, "") {
		for {
			c, err := p.expect(token.Ident, "")
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c.Literal)
			if !p.accept(token.Comma, "") {
				break
			}
		}
		if _, err := p.expect(token.RParen, ""); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		row, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(token.Comma, "") {
			break
		}
	}
	return ins, nil
}
