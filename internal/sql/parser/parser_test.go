package parser

import (
	"strings"
	"testing"

	"repro/internal/sql/ast"
	"repro/internal/value"
)

func mustSelect(t *testing.T, src string) *ast.Select {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return sel
}

func TestSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT name, population FROM city")
	if len(sel.Items) != 2 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if ref, ok := sel.Items[0].Expr.(*ast.ColumnRef); !ok || ref.Name != "name" {
		t.Errorf("item 0 = %v", sel.Items[0].Expr)
	}
	if len(sel.From) != 1 || sel.From[0].Table != "city" {
		t.Errorf("from = %v", sel.From)
	}
	if sel.Limit != -1 {
		t.Errorf("absent LIMIT should be -1, got %d", sel.Limit)
	}
}

func TestAliases(t *testing.T) {
	sel := mustSelect(t, "SELECT name AS n, population pop FROM city c")
	if sel.Items[0].Alias != "n" || sel.Items[1].Alias != "pop" {
		t.Errorf("aliases = %q %q", sel.Items[0].Alias, sel.Items[1].Alias)
	}
	if sel.From[0].Alias != "c" || sel.From[0].Binding() != "c" {
		t.Errorf("table alias = %q", sel.From[0].Alias)
	}
}

func TestQualifiedAndStar(t *testing.T) {
	sel := mustSelect(t, "SELECT *, c.*, c.name FROM city c")
	if _, ok := sel.Items[0].Expr.(*ast.Star); !ok {
		t.Error("item 0 should be *")
	}
	star, ok := sel.Items[1].Expr.(*ast.Star)
	if !ok || star.Table != "c" {
		t.Errorf("item 1 should be c.*, got %v", sel.Items[1].Expr)
	}
	ref, ok := sel.Items[2].Expr.(*ast.ColumnRef)
	if !ok || ref.Table != "c" || ref.Name != "name" {
		t.Errorf("item 2 = %v", sel.Items[2].Expr)
	}
}

func TestWherePrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := sel.Where.(*ast.Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top should be OR: %v", sel.Where)
	}
	and, ok := or.Right.(*ast.Binary)
	if !ok || and.Op != "AND" {
		t.Fatalf("AND binds tighter: %v", or.Right)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 + 2 * 3 FROM t")
	add, ok := sel.Items[0].Expr.(*ast.Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("top = %v", sel.Items[0].Expr)
	}
	if mul, ok := add.Right.(*ast.Binary); !ok || mul.Op != "*" {
		t.Fatalf("* binds tighter: %v", add.Right)
	}
}

func TestComparisonForms(t *testing.T) {
	src := "SELECT x FROM t WHERE a IN (1, 2) AND b NOT IN (3) AND c BETWEEN 1 AND 5 AND d NOT BETWEEN 2 AND 3 AND e LIKE 'a%' AND f NOT LIKE '_b' AND g IS NULL AND h IS NOT NULL"
	sel := mustSelect(t, src)
	conjuncts := 0
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if b, ok := e.(*ast.Binary); ok && b.Op == "AND" {
			walk(b.Left)
			walk(b.Right)
			return
		}
		conjuncts++
	}
	walk(sel.Where)
	if conjuncts != 8 {
		t.Errorf("conjuncts = %d, want 8", conjuncts)
	}
}

func TestNegativeNumbersFold(t *testing.T) {
	sel := mustSelect(t, "SELECT x FROM t WHERE a > -5 AND b < -2.5")
	s := sel.Where.String()
	if !strings.Contains(s, "-5") || !strings.Contains(s, "-2.5") {
		t.Errorf("negative literals should fold: %s", s)
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	sel := mustSelect(t, "SELECT continent, COUNT(*), AVG(gdp), COUNT(DISTINCT language) FROM country GROUP BY continent HAVING COUNT(*) > 2 ORDER BY AVG(gdp) DESC LIMIT 3 OFFSET 1")
	if len(sel.GroupBy) != 1 {
		t.Fatalf("group by = %v", sel.GroupBy)
	}
	count, ok := sel.Items[1].Expr.(*ast.FuncCall)
	if !ok || count.Name != "COUNT" {
		t.Fatalf("COUNT(*) = %v", sel.Items[1].Expr)
	}
	if _, isStar := count.Args[0].(*ast.Star); !isStar {
		t.Error("COUNT(*) arg should be Star")
	}
	distinct, ok := sel.Items[3].Expr.(*ast.FuncCall)
	if !ok || !distinct.Distinct {
		t.Error("COUNT(DISTINCT ...) should set Distinct")
	}
	if sel.Having == nil {
		t.Error("HAVING missing")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order by = %v", sel.OrderBy)
	}
	if sel.Limit != 3 || sel.Offset != 1 {
		t.Errorf("limit/offset = %d/%d", sel.Limit, sel.Offset)
	}
}

func TestJoins(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y CROSS JOIN d")
	if len(sel.From) != 4 {
		t.Fatalf("from = %v", sel.From)
	}
	if sel.From[1].Join != ast.JoinInner || sel.From[1].On == nil {
		t.Error("inner join parsed wrong")
	}
	if sel.From[2].Join != ast.JoinLeft {
		t.Error("left join parsed wrong")
	}
	if sel.From[3].Join != ast.JoinCross || sel.From[3].On != nil {
		t.Error("cross join parsed wrong")
	}
}

func TestCommaJoin(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM city c, mayor m WHERE c.mayor = m.name")
	if len(sel.From) != 2 || sel.From[1].Join != ast.JoinCross {
		t.Errorf("comma join = %v", sel.From)
	}
}

func TestSourceQualifiers(t *testing.T) {
	sel := mustSelect(t, "SELECT c.gdp FROM LLM.country c, DB.Employees e")
	if sel.From[0].Source != "LLM" || sel.From[0].Table != "country" {
		t.Errorf("LLM qualifier = %+v", sel.From[0])
	}
	if sel.From[1].Source != "DB" || sel.From[1].Table != "Employees" {
		t.Errorf("DB qualifier = %+v", sel.From[1])
	}
}

func TestCase(t *testing.T) {
	sel := mustSelect(t, "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t")
	c, ok := sel.Items[0].Expr.(*ast.Case)
	if !ok || len(c.Whens) != 1 || c.Else == nil {
		t.Fatalf("case = %v", sel.Items[0].Expr)
	}
}

func TestDistinct(t *testing.T) {
	if !mustSelect(t, "SELECT DISTINCT name FROM t").Distinct {
		t.Error("DISTINCT not set")
	}
	if mustSelect(t, "SELECT ALL name FROM t").Distinct {
		t.Error("ALL means not distinct")
	}
}

func TestCreateTable(t *testing.T) {
	stmt, err := Parse("CREATE TABLE city (name TEXT PRIMARY KEY, population INT, gdp FLOAT)")
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := stmt.(*ast.CreateTable)
	if !ok {
		t.Fatalf("statement = %T", stmt)
	}
	if ct.Name != "city" || len(ct.Columns) != 3 {
		t.Fatalf("create = %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type != value.KindString {
		t.Errorf("column 0 = %+v", ct.Columns[0])
	}
	if ct.Columns[1].Type != value.KindInt || ct.Columns[2].Type != value.KindFloat {
		t.Error("column types wrong")
	}
}

func TestInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO city (name, population) VALUES ('Rome', 2873000), ('Paris', 2161000)")
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := stmt.(*ast.Insert)
	if !ok {
		t.Fatalf("statement = %T", stmt)
	}
	if len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT x FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("script statements = %d", len(stmts))
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t trailing garbage (",
		"INSERT INTO t",
		"CREATE TABLE t",
		"SELECT a FROM t WHERE a IN ()",
		"UPDATE t SET x = 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// TestRoundTrip renders parsed statements back to SQL and reparses; the
// two ASTs must render identically.
func TestRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT name FROM city",
		"SELECT DISTINCT c.name, c.population FROM city c WHERE c.population > 1000000 ORDER BY c.population DESC LIMIT 5",
		"SELECT continent, COUNT(*) FROM country GROUP BY continent HAVING COUNT(*) > 2",
		"SELECT a.x FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id",
		"SELECT x FROM t WHERE a BETWEEN 1 AND 2 AND b LIKE 'x%' AND c IN (1, 2, 3)",
		"SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
		"SELECT x + 1 AS y FROM t WHERE NOT (a = 1)",
	}
	for _, q := range queries {
		first := mustSelect(t, q)
		second := mustSelect(t, first.String())
		if first.String() != second.String() {
			t.Errorf("round trip diverged:\n  in:  %s\n  1st: %s\n  2nd: %s", q, first.String(), second.String())
		}
	}
}

func TestSemicolonTolerated(t *testing.T) {
	if _, err := Parse("SELECT x FROM t;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
}
