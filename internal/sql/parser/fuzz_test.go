package parser

import (
	"testing"

	"repro/internal/sql/ast"
)

// FuzzParse throws arbitrary text at the SQL parser. The parser must
// never panic; when it accepts an input, rendering the statement back to
// SQL must also be panic-free (String is what the prompt generator and
// EXPLAIN rely on).
//
// Seed corpus: testdata/fuzz/FuzzParse plus the f.Add calls below.
// Run with: go test -run '^$' -fuzz FuzzParse -fuzztime 30s ./internal/sql/parser
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT name FROM country WHERE independence_year > 1950",
		"SELECT c.name, m.birth_date FROM city c, mayor m WHERE c.mayor = m.name AND m.election_year = 2019",
		"SELECT continent, COUNT(*) FROM country GROUP BY continent HAVING COUNT(*) > 3 ORDER BY continent DESC LIMIT 5 OFFSET 1",
		"SELECT DISTINCT name FROM city WHERE population BETWEEN 1000000 AND 5000000",
		"SELECT * FROM LLM.country co JOIN DB.employees e ON co.code = e.countryCode",
		"EXPLAIN ANALYZE SELECT name FROM city WHERE population > 1000000 AND elevation > 500",
		"SELECT CASE WHEN population > 1000000 THEN 'big' ELSE 'small' END FROM city",
		"SELECT name FROM singer WHERE genre IN ('Pop', 'Rock') AND name NOT LIKE 'A%'",
		"CREATE TABLE t (id INT PRIMARY KEY, name TEXT)",
		"INSERT INTO t (id, name) VALUES (1, 'x'), (2, 'y')",
		"SELECT -1.5e3 + 2 * (3 % 4) AS v",
		"SELECT name FROM city WHERE name IS NOT NULL; SELECT 1",
		"SELECT `quoted ident`, \"another one\" FROM t -- comment\n/* block */",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted statements must render back to SQL without panicking.
		switch s := stmt.(type) {
		case *ast.Select:
			_ = s.String()
		case *ast.Explain:
			_ = s.String()
		}
		// A single statement accepted by Parse is a valid script too.
		if _, err := ParseScript(src); err != nil {
			t.Errorf("Parse accepted %q but ParseScript rejected it: %v", src, err)
		}
	})
}
