// Package token defines the lexical tokens of the SQL dialect Galois
// understands.
package token

import "strings"

// Type identifies the class of a token.
type Type uint8

// Token types.
const (
	Illegal Type = iota
	EOF

	Ident  // city, c.name (qualification handled by the parser)
	Number // 42, 3.14
	String // 'abc'

	// Operators and punctuation.
	Comma
	Dot
	Semicolon
	LParen
	RParen
	Star
	Plus
	Minus
	Slash
	Percent
	Eq
	NotEq // != or <>
	Lt
	LtEq
	Gt
	GtEq

	Keyword // SELECT, FROM, ...
)

var typeNames = map[Type]string{
	Illegal: "ILLEGAL", EOF: "EOF", Ident: "IDENT", Number: "NUMBER",
	String: "STRING", Comma: ",", Dot: ".", Semicolon: ";", LParen: "(",
	RParen: ")", Star: "*", Plus: "+", Minus: "-", Slash: "/", Percent: "%",
	Eq: "=", NotEq: "!=", Lt: "<", LtEq: "<=", Gt: ">", GtEq: ">=",
	Keyword: "KEYWORD",
}

// String returns a printable name for the token type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return "UNKNOWN"
}

// Token is one lexical unit with its source position (byte offset).
type Token struct {
	Type    Type
	Literal string // raw text; for Keyword it is upper-cased
	Pos     int
}

// keywords is the reserved-word set. Identifiers matching these (case
// insensitively) lex as Keyword tokens.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"BETWEEN": true, "LIKE": true, "IS": true, "NULL": true,
	"DISTINCT": true, "JOIN": true, "INNER": true, "LEFT": true,
	"RIGHT": true, "OUTER": true, "CROSS": true, "ON": true,
	"ASC": true, "DESC": true, "TRUE": true, "FALSE": true,
	"CREATE": true, "TABLE": true, "PRIMARY": true, "KEY": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"EXPLAIN": true, "ANALYZE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"UNION": true, "ALL": true, "EXISTS": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true,
}

// IsKeyword reports whether the identifier text is reserved.
func IsKeyword(s string) bool { return keywords[strings.ToUpper(s)] }

// IsAggregateName reports whether the keyword names an aggregate function.
func IsAggregateName(s string) bool {
	switch strings.ToUpper(s) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}
