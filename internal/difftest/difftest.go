// Package difftest generates seeded random SQL queries over the
// simulated world for differential testing: the same query is executed
// by the batched (stop-and-go) and the pipelined streaming executor, and
// the results must be identical — plus, on LIMIT-free plans, the prompt
// counts must match exactly. The generator mirrors the sqllogictest-style
// randomized harnesses production query engines lean on: cheap to run by
// the hundreds, seeded for reproducibility, and shaped to hit every
// operator the engine implements (projections, LLM filters, joins,
// DISTINCT, ORDER BY, LIMIT/OFFSET, aggregates).
package difftest

import (
	"fmt"
	"math/rand"
	"strings"
)

// Query is one generated test case.
type Query struct {
	SQL string
	// HasLimit marks plans whose pipelined execution may legitimately
	// issue fewer prompts (early termination), so prompt counts are not
	// comparable.
	HasLimit bool
}

// Generator produces random queries from a seeded source. Not safe for
// concurrent use.
type Generator struct {
	rnd *rand.Rand
}

// New returns a generator with the given seed; the query sequence is a
// pure function of it.
func New(seed int64) *Generator {
	return &Generator{rnd: rand.New(rand.NewSource(seed))}
}

// attr describes one column of the generation schema with literals that
// produce non-trivial selectivities against the synthetic world.
type attr struct {
	name    string
	numeric bool
	lits    []string
}

// table mirrors the LLM-bound relations of the benchmark world (see
// internal/world): names, key columns and plausible predicate literals.
type table struct {
	name  string
	key   string
	attrs []attr
}

var tables = []table{
	{name: "city", key: "name", attrs: []attr{
		{name: "population", numeric: true, lits: []string{"500000", "1000000", "5000000"}},
		{name: "elevation", numeric: true, lits: []string{"100", "500", "1000"}},
		{name: "founded_year", numeric: true, lits: []string{"1000", "1500", "1800"}},
		{name: "country", lits: []string{"'France'", "'Japan'", "'USA'"}},
	}},
	{name: "country", key: "name", attrs: []attr{
		{name: "population", numeric: true, lits: []string{"10000000", "50000000", "100000000"}},
		{name: "area", numeric: true, lits: []string{"100000", "500000"}},
		{name: "gdp", numeric: true, lits: []string{"500", "1000", "2000"}},
		{name: "continent", lits: []string{"'Europe'", "'Asia'", "'Africa'"}},
		{name: "independence_year", numeric: true, lits: []string{"1800", "1900", "1950"}},
	}},
	{name: "mayor", key: "name", attrs: []attr{
		{name: "age", numeric: true, lits: []string{"40", "50", "60"}},
		{name: "election_year", numeric: true, lits: []string{"2018", "2019", "2020"}},
		{name: "party", lits: []string{"'Independent'", "'Labour'"}},
	}},
	{name: "airport", key: "iata", attrs: []attr{
		{name: "passengers", numeric: true, lits: []string{"20", "50", "80"}},
		{name: "runways", numeric: true, lits: []string{"2", "3", "4"}},
		{name: "city", lits: []string{"'London'", "'Tokyo'"}},
	}},
	{name: "singer", key: "name", attrs: []attr{
		{name: "birth_year", numeric: true, lits: []string{"1960", "1980", "1990"}},
		{name: "genre", lits: []string{"'Pop'", "'Rock'"}},
		{name: "albums", numeric: true, lits: []string{"5", "10", "15"}},
	}},
	{name: "stadium", key: "name", attrs: []attr{
		{name: "capacity", numeric: true, lits: []string{"40000", "60000", "80000"}},
		{name: "opened_year", numeric: true, lits: []string{"1950", "1990", "2000"}},
	}},
	{name: "mountain", key: "name", attrs: []attr{
		{name: "height", numeric: true, lits: []string{"3000", "5000", "8000"}},
		{name: "mountain_range", lits: []string{"'Himalayas'", "'Andes'"}},
	}},
}

// joinEdge is one foreign-key-style reference the world maintains.
type joinEdge struct {
	left, leftAttr string // left.leftAttr references right's key
	right          string
}

var joinEdges = []joinEdge{
	{"city", "country", "country"},
	{"city", "mayor", "mayor"},
	{"mayor", "city", "city"},
	{"airport", "city", "city"},
	{"airport", "country", "country"},
	{"singer", "country", "country"},
	{"stadium", "city", "city"},
	{"mountain", "country", "country"},
}

func tableByName(name string) table {
	for _, t := range tables {
		if t.name == name {
			return t
		}
	}
	panic("difftest: unknown table " + name)
}

func (g *Generator) pick(n int) int { return g.rnd.Intn(n) }

func (g *Generator) predicate(alias string, t table) string {
	a := t.attrs[g.pick(len(t.attrs))]
	var op string
	if a.numeric {
		op = []string{"<", "<=", ">", ">=", "=", "!="}[g.pick(6)]
	} else {
		op = []string{"=", "!="}[g.pick(2)]
	}
	lit := a.lits[g.pick(len(a.lits))]
	col := a.name
	if alias != "" {
		col = alias + "." + a.name
	}
	return fmt.Sprintf("%s %s %s", col, op, lit)
}

// Query generates the next random query.
func (g *Generator) Query() Query {
	switch g.pick(10) {
	case 0, 1, 2, 3, 4:
		return g.singleTable()
	case 5, 6:
		return g.aggregate()
	default:
		return g.join()
	}
}

func (g *Generator) singleTable() Query {
	t := tables[g.pick(len(tables))]
	cols := []string{t.key}
	for _, a := range t.attrs {
		if g.pick(3) == 0 {
			cols = append(cols, a.name)
		}
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	distinct := g.pick(5) == 0
	if distinct {
		b.WriteString("DISTINCT ")
	}
	b.WriteString(strings.Join(cols, ", "))
	b.WriteString(" FROM ")
	b.WriteString(t.name)
	preds := g.pick(3)
	for i := 0; i < preds; i++ {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(g.predicate("", t))
	}
	if g.pick(3) == 0 {
		b.WriteString(" ORDER BY " + cols[g.pick(len(cols))])
		if g.pick(2) == 0 {
			b.WriteString(" DESC")
		}
	}
	q := Query{}
	if g.pick(4) == 0 {
		fmt.Fprintf(&b, " LIMIT %d", 1+g.pick(8))
		if g.pick(3) == 0 {
			fmt.Fprintf(&b, " OFFSET %d", g.pick(4))
		}
		q.HasLimit = true
	}
	q.SQL = b.String()
	return q
}

func (g *Generator) aggregate() Query {
	t := tables[g.pick(len(tables))]
	var numeric []attr
	for _, a := range t.attrs {
		if a.numeric {
			numeric = append(numeric, a)
		}
	}
	var b strings.Builder
	if g.pick(3) == 0 || len(numeric) == 0 {
		// Group-by over a (possibly categorical) attribute.
		a := t.attrs[g.pick(len(t.attrs))]
		fmt.Fprintf(&b, "SELECT %s, COUNT(*) FROM %s", a.name, t.name)
		if g.pick(2) == 0 {
			b.WriteString(" WHERE " + g.predicate("", t))
		}
		fmt.Fprintf(&b, " GROUP BY %s", a.name)
	} else {
		agg := []string{"COUNT", "SUM", "AVG", "MIN", "MAX"}[g.pick(5)]
		arg := "*"
		if agg != "COUNT" {
			arg = numeric[g.pick(len(numeric))].name
		}
		fmt.Fprintf(&b, "SELECT %s(%s) FROM %s", agg, arg, t.name)
		if g.pick(2) == 0 {
			b.WriteString(" WHERE " + g.predicate("", t))
		}
	}
	return Query{SQL: b.String()}
}

func (g *Generator) join() Query {
	e := joinEdges[g.pick(len(joinEdges))]
	l, r := tableByName(e.left), tableByName(e.right)
	var b strings.Builder
	cols := []string{"a." + l.key, "b." + r.key}
	if g.pick(2) == 0 {
		cols = append(cols, "b."+r.attrs[g.pick(len(r.attrs))].name)
	}
	fmt.Fprintf(&b, "SELECT %s FROM %s a, %s b WHERE a.%s = b.%s",
		strings.Join(cols, ", "), l.name, r.name, e.leftAttr, r.key)
	if g.pick(2) == 0 {
		b.WriteString(" AND " + g.predicate("a", l))
	}
	if g.pick(3) == 0 {
		b.WriteString(" AND " + g.predicate("b", r))
	}
	q := Query{}
	if g.pick(5) == 0 {
		fmt.Fprintf(&b, " LIMIT %d", 1+g.pick(5))
		q.HasLimit = true
	}
	q.SQL = b.String()
	return q
}

// SubsumptionPair is one parent/child case for the semantic result
// cache: the child's plan is subsumed by the parent's, so a warm cache
// must answer the child with a residual plan and zero prompts — and the
// relation must be bit-identical to executing the child directly.
type SubsumptionPair struct {
	Parent string
	Child  string
}

// Pair generates a parent shaped like a cache producer — a pure
// project-filter over one table, projecting the key plus a random
// attribute subset — and a child the parent's plan subsumes: the same
// FROM and conjuncts (possibly plus an extra key-column predicate, the
// only predicate class residual plans may evaluate locally; non-key LLM
// attributes are judged by boolean prompts and never re-evaluated), a
// column subset, and optionally DISTINCT, ORDER BY, LIMIT/OFFSET or an
// aggregate on top.
func (g *Generator) Pair() SubsumptionPair {
	t := tables[g.pick(len(tables))]
	cols := []string{t.key}
	for _, a := range t.attrs {
		if g.pick(2) == 0 {
			cols = append(cols, a.name)
		}
	}
	if len(cols) == 1 {
		cols = append(cols, t.attrs[g.pick(len(t.attrs))].name)
	}
	var preds []string
	for n := g.pick(3); len(preds) < n; {
		preds = append(preds, g.predicate("", t))
	}
	parent := "SELECT " + strings.Join(cols, ", ") + " FROM " + t.name
	if len(preds) > 0 {
		parent += " WHERE " + strings.Join(preds, " AND ")
	}

	// Child columns: always keep the key (the residual key predicate and
	// ORDER BY resolve against it), drop the rest at random.
	childCols := []string{t.key}
	for _, c := range cols[1:] {
		if g.pick(2) == 0 {
			childCols = append(childCols, c)
		}
	}
	childPreds := append([]string(nil), preds...)
	if g.pick(2) == 0 {
		op := []string{"!=", "<", ">", ">="}[g.pick(4)]
		lit := []string{"'Aa'", "'M'", "'T'"}[g.pick(3)]
		childPreds = append(childPreds, fmt.Sprintf("%s %s %s", t.key, op, lit))
	}
	where := ""
	if len(childPreds) > 0 {
		where = " WHERE " + strings.Join(childPreds, " AND ")
	}

	var b strings.Builder
	if g.pick(4) == 0 {
		// Aggregate child over the cached relation.
		b.WriteString("SELECT COUNT(*) FROM " + t.name + where)
		return SubsumptionPair{Parent: parent, Child: b.String()}
	}
	b.WriteString("SELECT ")
	if g.pick(4) == 0 {
		b.WriteString("DISTINCT ")
	}
	b.WriteString(strings.Join(childCols, ", "))
	b.WriteString(" FROM " + t.name + where)
	if g.pick(2) == 0 {
		b.WriteString(" ORDER BY " + childCols[g.pick(len(childCols))])
		if g.pick(2) == 0 {
			b.WriteString(" DESC")
		}
	}
	if g.pick(3) == 0 {
		fmt.Fprintf(&b, " LIMIT %d", 1+g.pick(8))
		if g.pick(3) == 0 {
			fmt.Fprintf(&b, " OFFSET %d", g.pick(4))
		}
	}
	return SubsumptionPair{Parent: parent, Child: b.String()}
}
