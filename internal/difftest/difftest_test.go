package difftest

import (
	"context"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/simllm"
)

// engines builds one batched and one pipelined engine over the same
// simulated model seed, cache off so prompt counts are model calls.
func engines(t *testing.T) (*core.Engine, *core.Engine) {
	t.Helper()
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	batchedOpts := bench.PaperOptions() // stop-and-go, cache off
	pipelinedOpts := bench.PaperOptions()
	pipelinedOpts.Pipelined = true
	batched, err := r.Engine(r.Model(simllm.ChatGPT), batchedOpts)
	if err != nil {
		t.Fatal(err)
	}
	pipelined, err := r.Engine(r.Model(simllm.ChatGPT), pipelinedOpts)
	if err != nil {
		t.Fatal(err)
	}
	return batched, pipelined
}

// TestDifferentialBatchedVsPipelined runs ~200 seeded random queries
// through both executors and requires identical result relations — and,
// on LIMIT-free plans, identical prompt counts. This is the randomized
// cross-check CI runs under -race.
func TestDifferentialBatchedVsPipelined(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	batched, pipelined := engines(t)
	gen := New(42)
	ctx := context.Background()

	for i := 0; i < n; i++ {
		q := gen.Query()
		relB, repB, err := batched.Query(ctx, q.SQL)
		if err != nil {
			t.Fatalf("query %d (batched) %q: %v", i, q.SQL, err)
		}
		relP, repP, err := pipelined.Query(ctx, q.SQL)
		if err != nil {
			t.Fatalf("query %d (pipelined) %q: %v", i, q.SQL, err)
		}
		if relB.String() != relP.String() {
			t.Errorf("query %d: executors disagree on %q\nbatched:\n%s\npipelined:\n%s",
				i, q.SQL, relB.String(), relP.String())
		}
		if !q.HasLimit && repB.Stats.Prompts != repP.Stats.Prompts {
			t.Errorf("query %d: prompt counts differ on LIMIT-free %q: batched=%d pipelined=%d",
				i, q.SQL, repB.Stats.Prompts, repP.Stats.Prompts)
		}
	}
}

// TestDifferentialCostBased cross-checks the cost-based optimizer the
// same way: whatever plan it picks, both executors must agree on the
// result.
func TestDifferentialCostBased(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	batchedOpts := bench.CostBasedOptions()
	pipelinedOpts := bench.CostBasedOptions()
	pipelinedOpts.Pipelined = true
	batched, err := r.Engine(r.Model(simllm.ChatGPT), batchedOpts)
	if err != nil {
		t.Fatal(err)
	}
	pipelined, err := r.Engine(r.Model(simllm.ChatGPT), pipelinedOpts)
	if err != nil {
		t.Fatal(err)
	}
	gen := New(7)
	ctx := context.Background()
	// LIMIT queries are safe to include: the engine excludes plans with
	// a LIMIT from statistics observation (their counters depend on the
	// execution strategy), so the two arms' adaptive statistics — and
	// with them every future plan choice — stay in lockstep.
	for i := 0; i < n; i++ {
		q := gen.Query()
		relB, _, err := batched.Query(ctx, q.SQL)
		if err != nil {
			t.Fatalf("query %d (batched) %q: %v", i, q.SQL, err)
		}
		relP, _, err := pipelined.Query(ctx, q.SQL)
		if err != nil {
			t.Fatalf("query %d (pipelined) %q: %v", i, q.SQL, err)
		}
		if relB.String() != relP.String() {
			t.Errorf("query %d: executors disagree on %q\nbatched:\n%s\npipelined:\n%s",
				i, q.SQL, relB.String(), relP.String())
		}
	}
}

// TestGeneratorDeterminism pins the seeded sequence: the harness is only
// reproducible if the same seed yields the same queries.
func TestGeneratorDeterminism(t *testing.T) {
	a, b := New(3), New(3)
	for i := 0; i < 50; i++ {
		qa, qb := a.Query(), b.Query()
		if qa != qb {
			t.Fatalf("query %d diverged: %q vs %q", i, qa.SQL, qb.SQL)
		}
	}
}

// TestDifferentialConcurrentVsSerial is the isolation differential: the
// seeded query corpus runs K-ways concurrently against ONE shared
// runtime (one scheduler, one statistics store, cache off so prompt
// accounting is per-query exact), and every query's relation must be
// bit-identical to its serial run. Runs under -race in CI.
func TestDifferentialConcurrentVsSerial(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 24
	}
	const k = 6

	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := bench.PaperOptions() // cache off
	opts.Pipelined = true
	// Fixed heuristic plans: under cost-based planning the plan of query
	// i depends on the statistics observed from queries before it, which
	// is execution-order-dependent; results would still match but prompt
	// counts could not be compared.
	opts.Optimizer.CostBased = false

	// Serial arm: its own runtime, one query at a time.
	serialEngine, err := r.Engine(r.Model(simllm.ChatGPT), opts)
	if err != nil {
		t.Fatal(err)
	}
	gen := New(99)
	queries := make([]Query, n)
	serialRels := make([]string, n)
	serialPrompts := make([]int, n)
	for i := 0; i < n; i++ {
		queries[i] = gen.Query()
		rel, rep, err := serialEngine.Query(context.Background(), queries[i].SQL)
		if err != nil {
			t.Fatalf("query %d (serial) %q: %v", i, queries[i].SQL, err)
		}
		serialRels[i] = rel.String()
		serialPrompts[i] = rep.Stats.Prompts
	}

	// Concurrent arm: one shared runtime, k queries in flight at a time.
	rt, err := r.Runtime(r.Model(simllm.ChatGPT), opts)
	if err != nil {
		t.Fatal(err)
	}
	sem := make(chan struct{}, k)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rel, rep, err := rt.NewSession().Query(context.Background(), queries[i].SQL)
			if err != nil {
				t.Errorf("query %d (concurrent) %q: %v", i, queries[i].SQL, err)
				return
			}
			if rel.String() != serialRels[i] {
				t.Errorf("query %d: concurrent run diverged on %q\nconcurrent:\n%s\nserial:\n%s",
					i, queries[i].SQL, rel.String(), serialRels[i])
			}
			// LIMIT plans may legitimately issue fewer prompts (early
			// termination races the producers); everything else must pay
			// exactly the serial price.
			if !queries[i].HasLimit && rep.Stats.Prompts != serialPrompts[i] {
				t.Errorf("query %d: prompt count diverged on LIMIT-free %q: concurrent=%d serial=%d",
					i, queries[i].SQL, rep.Stats.Prompts, serialPrompts[i])
			}
		}(i)
	}
	wg.Wait()
}

// TestDifferentialSubsumption is the semantic-cache differential: for
// each seeded parent/child pair, a cache-on engine runs the parent (the
// producer) and then the child, which must be answered without a single
// prompt — by subsumption on first sight, or exactly if an earlier pair
// already cached the same statement — while a cache-off control engine
// runs the child directly. The relations must be bit-identical: a
// residual plan over a cached relation is only correct if nobody can
// tell it apart from direct execution. Runs under -race in CI.
func TestDifferentialSubsumption(t *testing.T) {
	n := 80
	if testing.Short() {
		n = 16
	}
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	cachedOpts := bench.PaperOptions()
	cachedOpts.Pipelined = true
	cachedOpts.Optimizer.CostBased = false
	cachedOpts.ResultCacheEnabled = true
	controlOpts := cachedOpts
	controlOpts.ResultCacheEnabled = false
	cached, err := r.Engine(r.Model(simllm.ChatGPT), cachedOpts)
	if err != nil {
		t.Fatal(err)
	}
	control, err := r.Engine(r.Model(simllm.ChatGPT), controlOpts)
	if err != nil {
		t.Fatal(err)
	}

	gen := New(1234)
	ctx := context.Background()
	seen := map[string]bool{}
	subsumed := 0
	for i := 0; i < n; i++ {
		p := gen.Pair()
		if _, _, err := cached.Query(ctx, p.Parent); err != nil {
			t.Fatalf("pair %d parent %q: %v", i, p.Parent, err)
		}
		relC, repC, err := cached.Query(ctx, p.Child)
		if err != nil {
			t.Fatalf("pair %d child (cached) %q: %v", i, p.Child, err)
		}
		relD, _, err := control.Query(ctx, p.Child)
		if err != nil {
			t.Fatalf("pair %d child (control) %q: %v", i, p.Child, err)
		}
		if relC.String() != relD.String() {
			t.Errorf("pair %d: cache-answered child diverged on %q (parent %q)\ncached:\n%s\ndirect:\n%s",
				i, p.Child, p.Parent, relC.String(), relD.String())
		}
		if repC.Stats.Prompts != 0 {
			t.Errorf("pair %d: child %q cost %d prompts, want 0 (parent %q, cached=%q)",
				i, p.Child, repC.Stats.Prompts, p.Parent, repC.Cached)
		}
		// First sight of this exact statement (and not a replay of its
		// own parent) must be answered by subsumption, not exact match.
		if !seen[p.Child] && p.Child != p.Parent {
			if repC.Cached != core.CacheSubsumed {
				t.Errorf("pair %d: child %q answered with cached=%q, want %q (parent %q)",
					i, p.Child, repC.Cached, core.CacheSubsumed, p.Parent)
			} else {
				subsumed++
			}
		}
		seen[p.Parent] = true
		seen[p.Child] = true
	}
	if subsumed == 0 {
		t.Fatal("no pair exercised subsumption")
	}
	t.Logf("%d/%d children answered by subsumption on first sight", subsumed, n)
}
