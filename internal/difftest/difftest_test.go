package difftest

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/simllm"
)

// engines builds one batched and one pipelined engine over the same
// simulated model seed, cache off so prompt counts are model calls.
func engines(t *testing.T) (*core.Engine, *core.Engine) {
	t.Helper()
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	batchedOpts := bench.PaperOptions() // stop-and-go, cache off
	pipelinedOpts := bench.PaperOptions()
	pipelinedOpts.Pipelined = true
	batched, err := r.Engine(r.Model(simllm.ChatGPT), batchedOpts)
	if err != nil {
		t.Fatal(err)
	}
	pipelined, err := r.Engine(r.Model(simllm.ChatGPT), pipelinedOpts)
	if err != nil {
		t.Fatal(err)
	}
	return batched, pipelined
}

// TestDifferentialBatchedVsPipelined runs ~200 seeded random queries
// through both executors and requires identical result relations — and,
// on LIMIT-free plans, identical prompt counts. This is the randomized
// cross-check CI runs under -race.
func TestDifferentialBatchedVsPipelined(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	batched, pipelined := engines(t)
	gen := New(42)
	ctx := context.Background()

	for i := 0; i < n; i++ {
		q := gen.Query()
		relB, repB, err := batched.Query(ctx, q.SQL)
		if err != nil {
			t.Fatalf("query %d (batched) %q: %v", i, q.SQL, err)
		}
		relP, repP, err := pipelined.Query(ctx, q.SQL)
		if err != nil {
			t.Fatalf("query %d (pipelined) %q: %v", i, q.SQL, err)
		}
		if relB.String() != relP.String() {
			t.Errorf("query %d: executors disagree on %q\nbatched:\n%s\npipelined:\n%s",
				i, q.SQL, relB.String(), relP.String())
		}
		if !q.HasLimit && repB.Stats.Prompts != repP.Stats.Prompts {
			t.Errorf("query %d: prompt counts differ on LIMIT-free %q: batched=%d pipelined=%d",
				i, q.SQL, repB.Stats.Prompts, repP.Stats.Prompts)
		}
	}
}

// TestDifferentialCostBased cross-checks the cost-based optimizer the
// same way: whatever plan it picks, both executors must agree on the
// result.
func TestDifferentialCostBased(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	batchedOpts := bench.CostBasedOptions()
	pipelinedOpts := bench.CostBasedOptions()
	pipelinedOpts.Pipelined = true
	batched, err := r.Engine(r.Model(simllm.ChatGPT), batchedOpts)
	if err != nil {
		t.Fatal(err)
	}
	pipelined, err := r.Engine(r.Model(simllm.ChatGPT), pipelinedOpts)
	if err != nil {
		t.Fatal(err)
	}
	gen := New(7)
	ctx := context.Background()
	// LIMIT queries are safe to include: the engine excludes plans with
	// a LIMIT from statistics observation (their counters depend on the
	// execution strategy), so the two arms' adaptive statistics — and
	// with them every future plan choice — stay in lockstep.
	for i := 0; i < n; i++ {
		q := gen.Query()
		relB, _, err := batched.Query(ctx, q.SQL)
		if err != nil {
			t.Fatalf("query %d (batched) %q: %v", i, q.SQL, err)
		}
		relP, _, err := pipelined.Query(ctx, q.SQL)
		if err != nil {
			t.Fatalf("query %d (pipelined) %q: %v", i, q.SQL, err)
		}
		if relB.String() != relP.String() {
			t.Errorf("query %d: executors disagree on %q\nbatched:\n%s\npipelined:\n%s",
				i, q.SQL, relB.String(), relP.String())
		}
	}
}

// TestGeneratorDeterminism pins the seeded sequence: the harness is only
// reproducible if the same seed yields the same queries.
func TestGeneratorDeterminism(t *testing.T) {
	a, b := New(3), New(3)
	for i := 0; i < 50; i++ {
		qa, qb := a.Query(), b.Query()
		if qa != qb {
			t.Fatalf("query %d diverged: %q vs %q", i, qa.SQL, qb.SQL)
		}
	}
}
