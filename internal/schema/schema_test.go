package schema

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/value"
)

func citySchema() *Schema {
	return New(
		Column{Table: "c", Name: "name", Type: value.KindString},
		Column{Table: "c", Name: "population", Type: value.KindInt},
		Column{Table: "m", Name: "name", Type: value.KindString},
	)
}

func TestResolve(t *testing.T) {
	s := citySchema()
	if i, err := s.Resolve("c", "population"); err != nil || i != 1 {
		t.Errorf("Resolve(c.population) = %d, %v", i, err)
	}
	if i, err := s.Resolve("", "population"); err != nil || i != 1 {
		t.Errorf("unqualified unique resolve = %d, %v", i, err)
	}
	if i, err := s.Resolve("C", "POPULATION"); err != nil || i != 1 {
		t.Errorf("case-insensitive resolve = %d, %v", i, err)
	}
	if _, err := s.Resolve("", "name"); !errors.Is(err, ErrAmbiguous) {
		t.Errorf("ambiguous name should fail with ErrAmbiguous, got %v", err)
	}
	if _, err := s.Resolve("c", "mayor"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("missing column should fail with ErrNoColumn, got %v", err)
	}
	if i := s.IndexOf("m", "name"); i != 2 {
		t.Errorf("IndexOf(m.name) = %d", i)
	}
	if i := s.IndexOf("x", "y"); i != -1 {
		t.Errorf("IndexOf missing = %d", i)
	}
}

func TestConcatProjectClone(t *testing.T) {
	a := New(Column{Name: "x", Type: value.KindInt})
	b := New(Column{Name: "y", Type: value.KindString})
	ab := a.Concat(b)
	if ab.Len() != 2 || ab.Columns[0].Name != "x" || ab.Columns[1].Name != "y" {
		t.Errorf("Concat = %v", ab)
	}
	p := ab.Project([]int{1})
	if p.Len() != 1 || p.Columns[0].Name != "y" {
		t.Errorf("Project = %v", p)
	}
	c := ab.Clone()
	c.Columns[0].Name = "z"
	if ab.Columns[0].Name != "x" {
		t.Error("Clone must deep-copy columns")
	}
	if !ab.Equal(a.Concat(b)) {
		t.Error("Equal should hold for identical schemas")
	}
	if ab.Equal(a) {
		t.Error("Equal should fail for different schemas")
	}
}

func TestSchemaString(t *testing.T) {
	s := New(Column{Table: "t", Name: "a", Type: value.KindInt})
	if got := s.String(); got != "(t.a INTEGER)" {
		t.Errorf("String = %q", got)
	}
}

func TestTupleOps(t *testing.T) {
	tp := Tuple{value.Int(1), value.Text("a")}
	cl := tp.Clone()
	cl[0] = value.Int(9)
	if tp[0].AsInt() != 1 {
		t.Error("Clone must not alias")
	}
	cat := tp.Concat(Tuple{value.Bool(true)})
	if len(cat) != 3 {
		t.Errorf("Concat len = %d", len(cat))
	}
	k1 := Tuple{value.Int(2)}.Key([]int{0})
	k2 := Tuple{value.Float(2)}.Key([]int{0})
	if k1 != k2 {
		t.Error("numeric-equal tuples should share keys")
	}
}

func TestRelation(t *testing.T) {
	r := NewRelation(New(Column{Name: "n", Type: value.KindInt}))
	r.Append(Tuple{value.Int(2)})
	r.Append(Tuple{value.Int(1)})
	if r.Cardinality() != 2 {
		t.Fatalf("Cardinality = %d", r.Cardinality())
	}
	r.SortRows()
	if r.Rows[0][0].AsInt() != 1 {
		t.Errorf("SortRows order wrong: %v", r.Rows)
	}
	cl := r.Clone()
	cl.Rows[0][0] = value.Int(99)
	if r.Rows[0][0].AsInt() != 1 {
		t.Error("Clone must deep-copy rows")
	}
	out := r.String()
	if !strings.Contains(out, "n") || !strings.Contains(out, "2") {
		t.Errorf("String rendering missing content:\n%s", out)
	}
}

func TestAppendPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append with wrong arity must panic")
		}
	}()
	r := NewRelation(New(Column{Name: "n", Type: value.KindInt}))
	r.Append(Tuple{value.Int(1), value.Int(2)})
}

func TestTableDefKeyIndex(t *testing.T) {
	def := &TableDef{
		Name:      "city",
		KeyColumn: "Name",
		Schema: New(
			Column{Name: "id", Type: value.KindInt},
			Column{Name: "name", Type: value.KindString},
		),
	}
	if i := def.KeyIndex(); i != 1 {
		t.Errorf("KeyIndex = %d (case-insensitive match expected)", i)
	}
	def.KeyColumn = "missing"
	if i := def.KeyIndex(); i != -1 {
		t.Errorf("KeyIndex for missing column = %d", i)
	}
}
