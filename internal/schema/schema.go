// Package schema defines the relational metadata and data containers shared
// by every layer of the engine: columns, schemas, tuples and materialized
// relations. A Relation is the unit the Galois executor passes between
// physical operators and ultimately returns to the caller.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Column describes one attribute of a relation. Table carries the binding
// alias ("c" for "city c") so qualified references resolve; it may be empty
// for derived columns such as aggregate outputs.
type Column struct {
	Table string
	Name  string
	Type  value.Kind
}

// QualifiedName renders table.name, or just name when unqualified.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// New builds a schema from columns.
func New(cols ...Column) *Schema { return &Schema{Columns: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// ErrAmbiguous is wrapped by Resolve when an unqualified name matches more
// than one column.
var ErrAmbiguous = fmt.Errorf("ambiguous column reference")

// ErrNoColumn is wrapped by Resolve when no column matches.
var ErrNoColumn = fmt.Errorf("no such column")

// Resolve finds the index of the column referenced by (table, name).
// Matching is case-insensitive. When table is empty, the name must be
// unambiguous across the schema.
func (s *Schema) Resolve(table, name string) (int, error) {
	found := -1
	for i, c := range s.Columns {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("%w: %s", ErrAmbiguous, name)
		}
		found = i
	}
	if found < 0 {
		ref := name
		if table != "" {
			ref = table + "." + name
		}
		return -1, fmt.Errorf("%w: %s", ErrNoColumn, ref)
	}
	return found, nil
}

// IndexOf is Resolve without error detail; it returns -1 when unresolved.
func (s *Schema) IndexOf(table, name string) int {
	i, err := s.Resolve(table, name)
	if err != nil {
		return -1
	}
	return i
}

// Concat returns a new schema with the columns of s followed by those of t.
func (s *Schema) Concat(t *Schema) *Schema {
	cols := make([]Column, 0, len(s.Columns)+len(t.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, t.Columns...)
	return &Schema{Columns: cols}
}

// Project returns a new schema with only the columns at the given indexes.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Columns[j]
	}
	return &Schema{Columns: cols}
}

// Clone deep-copies the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return &Schema{Columns: cols}
}

// String renders "(<t.a TEXT>, <b INTEGER>)" for diagnostics.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QualifiedName())
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have identical column lists.
func (s *Schema) Equal(t *Schema) bool {
	if len(s.Columns) != len(t.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != t.Columns[i] {
			return false
		}
	}
	return true
}

// Tuple is one row of values, positionally aligned with a Schema.
type Tuple []value.Value

// Clone deep-copies the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns a new tuple with the fields of t followed by those of u.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// Key returns a composite hash key over the fields at idx; used by joins,
// GROUP BY and DISTINCT.
func (t Tuple) Key(idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		b.WriteString(t[i].Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// Relation is a fully materialized table: a schema plus rows.
type Relation struct {
	Schema *Schema
	Rows   []Tuple
}

// NewRelation builds an empty relation over the schema.
func NewRelation(s *Schema) *Relation {
	return &Relation{Schema: s, Rows: nil}
}

// Cardinality returns the number of rows.
func (r *Relation) Cardinality() int { return len(r.Rows) }

// Append adds a row. The tuple length must match the schema; the engine
// treats a mismatch as an internal bug.
func (r *Relation) Append(t Tuple) {
	if len(t) != r.Schema.Len() {
		panic(fmt.Sprintf("schema: appending %d-tuple to %d-column relation", len(t), r.Schema.Len()))
	}
	r.Rows = append(r.Rows, t)
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema.Clone(), Rows: make([]Tuple, len(r.Rows))}
	for i, row := range r.Rows {
		out.Rows[i] = row.Clone()
	}
	return out
}

// SortRows orders rows lexicographically over all columns; used to make
// test output and table rendering deterministic.
func (r *Relation) SortRows() {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := range a {
			ak, bk := a[k].Key(), b[k].Key()
			if ak != bk {
				return ak < bk
			}
		}
		return false
	})
}

// String renders an aligned ASCII table, the format the CLI prints.
func (r *Relation) String() string {
	headers := make([]string, r.Schema.Len())
	widths := make([]int, r.Schema.Len())
	for i, c := range r.Schema.Columns {
		headers[i] = c.QualifiedName()
		widths[i] = len(headers[i])
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = v.String()
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	writeRow := func(fields []string) {
		for j, f := range fields {
			if j > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(f)
			for p := len(f); p < widths[j]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for j, w := range widths {
		if j > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// TableDef describes a base table: its name, schema and the single-attribute
// key Galois assumes every relation exposes (Section 3, "Tuples and Keys").
type TableDef struct {
	Name      string
	Schema    *Schema
	KeyColumn string // name of the key attribute, e.g. "name"
	// Backend optionally pins this table's prompts to a named model
	// backend in the runtime's registry (empty = the routing policy
	// decides per prompt role).
	Backend string
}

// KeyIndex returns the position of the key column in the schema, or -1.
func (d *TableDef) KeyIndex() int {
	for i, c := range d.Schema.Columns {
		if strings.EqualFold(c.Name, d.KeyColumn) {
			return i
		}
	}
	return -1
}
