package world_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/memdb"
	"repro/internal/value"
	"repro/internal/world"
)

func TestDumpSQLContainsDDL(t *testing.T) {
	w := world.Build()
	out := world.DumpSQL(w, "country")
	if !strings.Contains(out, "CREATE TABLE country") {
		t.Errorf("missing DDL:\n%s", out[:120])
	}
	if !strings.Contains(out, "name TEXT PRIMARY KEY") {
		t.Errorf("missing key declaration:\n%s", out[:200])
	}
	if !strings.Contains(out, "'United States'") {
		t.Error("missing data")
	}
	if world.DumpSQL(w, "nope") != "" {
		t.Error("unknown table dumps empty")
	}
}

// TestDumpSQLRoundTrip replays every table's dump through the SQL engine
// and compares the reloaded relation cell by cell against the original.
func TestDumpSQLRoundTrip(t *testing.T) {
	w := world.Build()
	ctx := context.Background()
	for _, name := range w.Tables() {
		db := memdb.New()
		script := world.DumpSQL(w, name)
		if _, err := db.ExecScript(ctx, script); err != nil {
			t.Fatalf("%s: replaying dump: %v", name, err)
		}
		got, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		want := w.Relation(name)
		if got.Cardinality() != want.Cardinality() {
			t.Fatalf("%s: %d rows reloaded, want %d", name, got.Cardinality(), want.Cardinality())
		}
		for i := range want.Rows {
			for j := range want.Rows[i] {
				a, b := want.Rows[i][j], got.Rows[i][j]
				if a.IsNull() && b.IsNull() {
					continue
				}
				if !value.Equal(a, b) {
					t.Fatalf("%s row %d col %d: %v != %v", name, i, j, a, b)
				}
			}
		}
	}
}
