// Package world builds the deterministic synthetic world that stands in
// for the paper's two data sources: the Spider ground-truth databases
// (relations loaded into the in-memory DBMS) and the factual knowledge a
// pre-trained LLM holds about generic topics (facts consulted, with noise,
// by the simulated models in package simllm).
//
// Both views are generated from the same hard-coded entity tables, so the
// cardinality and cell-match metrics compare like with like, exactly as in
// the paper where the Spider subset covers "generic topics, such as world
// geography and airports" the LLM has seen during pre-training.
package world

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/prompt"
	"repro/internal/schema"
	"repro/internal/value"
)

// World exposes the entity tables as relations (ground truth) and as a
// fact store (LLM knowledge).
type World struct {
	tables map[string]*Table
	// facts indexes rel|key|attr → value for O(1) lookups.
	facts map[string]value.Value
	// alts holds alternate surface forms (rel|key|attr → text), e.g. the
	// alpha-2 spelling of a country code.
	alts map[string]string
	// entityAlts holds alternate spellings of entity names themselves
	// (rel|key → text): "Italian Republic" for Italy, "E. Moreau" for a
	// mayor. These are what break joins when a model's surface style is
	// inconsistent across prompts.
	entityAlts map[string]string
	// refAttrs marks attributes whose values reference another relation's
	// key (rel|attr → target relation): city.country → country.
	refAttrs map[string]string
	// deriveds registers virtual attributes reachable through a reference
	// (city.mayor_birth_date = mayor(birth_date) via city.mayor). They
	// support the Section 6 "schema-less querying" exploration: two SQL
	// formulations of the same information need should agree.
	deriveds map[string]Derived
	// aliases maps every known alternate spelling to its canonical form;
	// feeds clean.NewCanonicalizer for Ablation C.
	aliases map[string]string
	// nounIndex maps relation nouns (singular and plural, humanized) to
	// table names.
	nounIndex map[string]string
}

// Table is one entity table with a popularity score per row (1.0 = most
// famous), used by the simulated models' recall bias.
type Table struct {
	Def        *schema.TableDef
	Rows       []schema.Tuple
	Popularity []float64
}

// Build constructs the world. The result is deterministic: every call
// returns identical data.
func Build() *World {
	w := &World{
		tables:     map[string]*Table{},
		facts:      map[string]value.Value{},
		alts:       map[string]string{},
		entityAlts: map[string]string{},
		refAttrs:   map[string]string{},
		deriveds:   map[string]Derived{},
		aliases:    map[string]string{},
		nounIndex:  map[string]string{},
	}
	w.addCountries()
	w.addCities()
	w.addAirports()
	w.addSingers()
	w.addStadiums()
	w.addMountains()
	w.addEmployees()
	w.registerReferences()
	w.indexNouns()
	return w
}

// registerReferences marks the attributes whose values are entity names of
// another relation, so the simulated models know when an answer is a
// cross-relation reference (and may use an alternate spelling for it).
func (w *World) registerReferences() {
	w.addRefAttr("city", "country", "country")
	w.addRefAttr("city", "mayor", "mayor")
	w.addRefAttr("mayor", "city", "city")
	w.addRefAttr("airport", "city", "city")
	w.addRefAttr("airport", "country", "country")
	w.addRefAttr("singer", "country", "country")
	w.addRefAttr("stadium", "city", "city")
	w.addRefAttr("stadium", "country", "country")
	w.addRefAttr("mountain", "country", "country")

	// Derived (schema-less) attributes: the Q2 formulation of the paper's
	// schema-less example asks for a city's mayorBirthDate directly.
	w.addDerived("city", "mayor_birth_date", "mayor", "mayor", "birth_date")
	w.addDerived("city", "mayor_party", "mayor", "mayor", "party")
	w.addDerived("singer", "country_capital", "country", "country", "capital")
}

// Derived describes a virtual attribute: follow Via (a reference attr of
// the relation) to Target and read TargetAttr there.
type Derived struct {
	Via        string
	Target     string
	TargetAttr string
}

func (w *World) addDerived(rel, attr, via, target, targetAttr string) {
	w.deriveds[strings.ToLower(rel)+"|"+strings.ToLower(attr)] = Derived{
		Via: via, Target: target, TargetAttr: targetAttr,
	}
}

// DerivedAttr returns the derivation of a virtual attribute, if any.
func (w *World) DerivedAttr(rel, attr string) (Derived, bool) {
	d, ok := w.deriveds[strings.ToLower(rel)+"|"+strings.ToLower(attr)]
	return d, ok
}

func key3(rel, k, attr string) string {
	return strings.ToLower(rel) + "|" + strings.ToLower(k) + "|" + strings.ToLower(attr)
}

// addTable registers a table and indexes its facts. Rows must be ordered
// most-famous-first; popularity decays linearly with position.
func (w *World) addTable(def *schema.TableDef, rows []schema.Tuple) *Table {
	t := &Table{Def: def, Rows: rows, Popularity: make([]float64, len(rows))}
	n := len(rows)
	ki := def.KeyIndex()
	for i, row := range rows {
		t.Popularity[i] = 1.0 - float64(i)/float64(n)
		k := row[ki].String()
		for j, c := range def.Schema.Columns {
			w.facts[key3(def.Name, k, c.Name)] = row[j]
		}
	}
	w.tables[strings.ToLower(def.Name)] = t
	return t
}

// addAlt registers an alternate surface form for a fact and the reverse
// alias for the canonicalizer.
func (w *World) addAlt(rel, k, attr, alt string) {
	canonical, ok := w.facts[key3(rel, k, attr)]
	if !ok {
		panic(fmt.Sprintf("world: alt for unknown fact %s.%s.%s", rel, k, attr))
	}
	w.alts[key3(rel, k, attr)] = alt
	w.aliases[strings.ToLower(alt)] = canonical.String()
}

// addEntityAlt registers an alternate spelling for an entity name and the
// reverse alias.
func (w *World) addEntityAlt(rel, k, alt string) {
	w.entityAlts[strings.ToLower(rel)+"|"+strings.ToLower(k)] = alt
	w.aliases[strings.ToLower(alt)] = k
}

// addRefAttr marks rel.attr as referencing target's key.
func (w *World) addRefAttr(rel, attr, target string) {
	w.refAttrs[strings.ToLower(rel)+"|"+strings.ToLower(attr)] = strings.ToLower(target)
}

// EntityAlt returns an alternate spelling for the entity, if registered.
func (w *World) EntityAlt(rel, k string) (string, bool) {
	s, ok := w.entityAlts[strings.ToLower(rel)+"|"+strings.ToLower(k)]
	return s, ok
}

// RefTarget returns the relation whose key the attribute references, if
// any ("city", "country" → "country").
func (w *World) RefTarget(rel, attr string) (string, bool) {
	t, ok := w.refAttrs[strings.ToLower(rel)+"|"+strings.ToLower(attr)]
	return t, ok
}

func (w *World) indexNouns() {
	for name := range w.tables {
		human := prompt.Humanize(name)
		w.nounIndex[human] = name
		w.nounIndex[prompt.Pluralize(human)] = name
	}
}

// Tables returns the table names in sorted order.
func (w *World) Tables() []string {
	names := make([]string, 0, len(w.tables))
	for n := range w.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table returns the named table, or nil.
func (w *World) Table(name string) *Table { return w.tables[strings.ToLower(name)] }

// Def returns the table definition, or nil.
func (w *World) Def(name string) *schema.TableDef {
	if t := w.tables[strings.ToLower(name)]; t != nil {
		return t.Def
	}
	return nil
}

// Relation materializes the named table as a ground-truth relation.
func (w *World) Relation(name string) *schema.Relation {
	t := w.Table(name)
	if t == nil {
		return nil
	}
	r := schema.NewRelation(t.Def.Schema.Clone())
	for _, row := range t.Rows {
		r.Append(row.Clone())
	}
	return r
}

// Fact returns the true value of (relation, key, attr); ok is false when
// the entity or attribute does not exist. Derived attributes resolve
// through their reference chain.
func (w *World) Fact(rel, k, attr string) (value.Value, bool) {
	if v, ok := w.facts[key3(rel, k, attr)]; ok {
		return v, true
	}
	if d, ok := w.DerivedAttr(rel, attr); ok {
		mid, ok := w.facts[key3(rel, k, d.Via)]
		if !ok {
			return value.Null(), false
		}
		return w.Fact(d.Target, mid.String(), d.TargetAttr)
	}
	return value.Null(), false
}

// AltSurface returns the registered alternate surface form of a fact
// ("IT" for country code "ITA"), if any.
func (w *World) AltSurface(rel, k, attr string) (string, bool) {
	s, ok := w.alts[key3(rel, k, attr)]
	return s, ok
}

// Aliases returns alternate-spelling → canonical pairs for the data
// cleaner's canonicalizer.
func (w *World) Aliases() map[string]string {
	out := make(map[string]string, len(w.aliases))
	for k, v := range w.aliases {
		out[k] = v
	}
	return out
}

// KeyPop pairs an entity key with its popularity.
type KeyPop struct {
	Key string
	Pop float64
}

// KeysByPopularity returns the keys of a relation, most famous first.
func (w *World) KeysByPopularity(rel string) []KeyPop {
	t := w.Table(rel)
	if t == nil {
		return nil
	}
	ki := t.Def.KeyIndex()
	out := make([]KeyPop, len(t.Rows))
	for i, row := range t.Rows {
		out[i] = KeyPop{Key: row[ki].String(), Pop: t.Popularity[i]}
	}
	return out
}

// Popularity returns the popularity of one entity (0 when unknown).
func (w *World) Popularity(rel, k string) float64 {
	t := w.Table(rel)
	if t == nil {
		return 0
	}
	ki := t.Def.KeyIndex()
	for i, row := range t.Rows {
		if strings.EqualFold(row[ki].String(), k) {
			return t.Popularity[i]
		}
	}
	return 0
}

// FindRelation maps a (possibly plural, humanized) noun to a table name.
func (w *World) FindRelation(noun string) (string, bool) {
	noun = strings.ToLower(strings.TrimSpace(noun))
	if name, ok := w.nounIndex[noun]; ok {
		return name, true
	}
	// Last resort: singularize unknown plurals.
	if name, ok := w.nounIndex[prompt.Singularize(noun)]; ok {
		return name, true
	}
	return "", false
}

// FindAttr maps a humanized attribute label back to the schema column
// name of a relation ("independence year" → "independence_year").
func (w *World) FindAttr(rel, label string) (string, bool) {
	t := w.Table(rel)
	if t == nil {
		return "", false
	}
	label = strings.ToLower(strings.TrimSpace(label))
	for _, c := range t.Def.Schema.Columns {
		if strings.ToLower(prompt.Humanize(c.Name)) == label || strings.EqualFold(c.Name, label) {
			return c.Name, true
		}
	}
	// Derived (schema-less) attributes answer too.
	for k := range w.deriveds {
		parts := strings.SplitN(k, "|", 2)
		if parts[0] != strings.ToLower(rel) {
			continue
		}
		if strings.ToLower(prompt.Humanize(parts[1])) == label || parts[1] == label {
			return parts[1], true
		}
	}
	return "", false
}

// OtherValue returns the value of attr for the i-th other entity of the
// relation (wrapping around); the simulated models use it to hallucinate
// plausible-but-wrong answers. ok is false for unknown relations.
func (w *World) OtherValue(rel, excludeKey, attr string, i int) (value.Value, bool) {
	t := w.Table(rel)
	if t == nil || len(t.Rows) < 2 {
		return value.Null(), false
	}
	ki := t.Def.KeyIndex()
	ai := -1
	for j, c := range t.Def.Schema.Columns {
		if strings.EqualFold(c.Name, attr) {
			ai = j
			break
		}
	}
	if ai < 0 {
		return value.Null(), false
	}
	if i < 0 {
		i = -i
	}
	for off := 0; off < len(t.Rows); off++ {
		row := t.Rows[(i+off)%len(t.Rows)]
		if !strings.EqualFold(row[ki].String(), excludeKey) {
			return row[ai], true
		}
	}
	return value.Null(), false
}

// col is shorthand for building schema columns in the data files.
func col(name string, kind value.Kind) schema.Column {
	return schema.Column{Name: name, Type: kind}
}
