package world

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/value"
)

func TestBuildDeterministic(t *testing.T) {
	a, b := Build(), Build()
	if !reflect.DeepEqual(a.Tables(), b.Tables()) {
		t.Fatal("table sets differ between builds")
	}
	for _, name := range a.Tables() {
		ta, tb := a.Table(name), b.Table(name)
		if len(ta.Rows) != len(tb.Rows) {
			t.Fatalf("%s row counts differ", name)
		}
		for i := range ta.Rows {
			if !reflect.DeepEqual(ta.Rows[i], tb.Rows[i]) {
				t.Fatalf("%s row %d differs", name, i)
			}
		}
	}
}

func TestExpectedTables(t *testing.T) {
	w := Build()
	want := []string{"airport", "city", "country", "employees", "mayor", "mountain", "singer", "stadium"}
	if !reflect.DeepEqual(w.Tables(), want) {
		t.Errorf("Tables() = %v, want %v", w.Tables(), want)
	}
	sizes := map[string]int{
		"country": 48, "city": 65, "mayor": 65, "airport": 37,
		"singer": 26, "stadium": 22, "mountain": 24, "employees": 48,
	}
	for name, n := range sizes {
		if got := len(w.Table(name).Rows); got != n {
			t.Errorf("%s has %d rows, want %d", name, got, n)
		}
	}
}

func TestFacts(t *testing.T) {
	w := Build()
	v, ok := w.Fact("country", "Italy", "code")
	if !ok || v.AsString() != "ITA" {
		t.Errorf("Italy code = %v, %v", v, ok)
	}
	v, ok = w.Fact("country", "italy", "CODE") // case-insensitive
	if !ok || v.AsString() != "ITA" {
		t.Errorf("case-insensitive fact = %v, %v", v, ok)
	}
	if _, ok := w.Fact("country", "Atlantis", "code"); ok {
		t.Error("unknown entity must have no facts")
	}
	if _, ok := w.Fact("country", "Italy", "flavor"); ok {
		t.Error("unknown attribute must have no facts")
	}
}

func TestKeysByPopularity(t *testing.T) {
	w := Build()
	kps := w.KeysByPopularity("country")
	if len(kps) != 48 {
		t.Fatalf("countries = %d", len(kps))
	}
	if kps[0].Key != "United States" {
		t.Errorf("most popular country = %q", kps[0].Key)
	}
	for i := 1; i < len(kps); i++ {
		if kps[i].Pop > kps[i-1].Pop {
			t.Fatal("popularity must be non-increasing")
		}
	}
	if p := w.Popularity("country", "United States"); p != 1.0 {
		t.Errorf("top popularity = %v", p)
	}
	if p := w.Popularity("country", "Atlantis"); p != 0 {
		t.Errorf("unknown popularity = %v", p)
	}
}

func TestAltsAndAliases(t *testing.T) {
	w := Build()
	alt, ok := w.AltSurface("country", "Italy", "code")
	if !ok || alt != "IT" {
		t.Errorf("alpha-2 alt for Italy = %q, %v", alt, ok)
	}
	official, ok := w.EntityAlt("country", "Italy")
	if !ok || official != "Italian Republic" {
		t.Errorf("entity alt for Italy = %q, %v", official, ok)
	}
	aliases := w.Aliases()
	if aliases["it"] != "ITA" {
		t.Errorf("alias it → %q", aliases["it"])
	}
	if aliases["italian republic"] != "Italy" {
		t.Errorf("alias italian republic → %q", aliases["italian republic"])
	}
	if aliases["usa"] != "United States" {
		t.Errorf("alias usa → %q", aliases["usa"])
	}
	// Every city has a qualified alternate and every mayor an initialed
	// one.
	if _, ok := w.EntityAlt("city", "Paris"); !ok {
		t.Error("city alt missing")
	}
	mayorKeys := w.KeysByPopularity("mayor")
	alt2, ok := w.EntityAlt("mayor", mayorKeys[0].Key)
	if !ok || !strings.Contains(alt2, ". ") {
		t.Errorf("mayor alt = %q, %v", alt2, ok)
	}
}

func TestRefTargets(t *testing.T) {
	w := Build()
	cases := map[[2]string]string{
		{"city", "country"}:     "country",
		{"city", "mayor"}:       "mayor",
		{"airport", "city"}:     "city",
		{"mountain", "country"}: "country",
	}
	for k, want := range cases {
		got, ok := w.RefTarget(k[0], k[1])
		if !ok || got != want {
			t.Errorf("RefTarget(%s, %s) = %q, %v", k[0], k[1], got, ok)
		}
	}
	if _, ok := w.RefTarget("city", "population"); ok {
		t.Error("population is not a reference")
	}
}

func TestFindRelationAndAttr(t *testing.T) {
	w := Build()
	for noun, want := range map[string]string{
		"cities": "city", "city": "city", "countries": "country",
		"airports": "airport", "mayors": "mayor",
	} {
		got, ok := w.FindRelation(noun)
		if !ok || got != want {
			t.Errorf("FindRelation(%q) = %q, %v", noun, got, ok)
		}
	}
	if _, ok := w.FindRelation("spaceships"); ok {
		t.Error("unknown noun must not resolve")
	}
	attr, ok := w.FindAttr("country", "independence year")
	if !ok || attr != "independence_year" {
		t.Errorf("FindAttr = %q, %v", attr, ok)
	}
	if _, ok := w.FindAttr("country", "flavor"); ok {
		t.Error("unknown attr must not resolve")
	}
}

func TestRelationMaterialization(t *testing.T) {
	w := Build()
	rel := w.Relation("country")
	if rel == nil || rel.Cardinality() != 48 {
		t.Fatalf("country relation = %v", rel)
	}
	// Mutating the materialized copy must not affect the world.
	rel.Rows[0][0] = value.Text("Mutated")
	if v, _ := w.Fact("country", "United States", "name"); v.AsString() != "United States" {
		t.Error("Relation must deep-copy rows")
	}
	if w.Relation("nope") != nil {
		t.Error("unknown relation should be nil")
	}
}

func TestReferentialConsistency(t *testing.T) {
	w := Build()
	// Every city's country must exist in the country table, and every
	// city's mayor in the mayor table.
	countries := map[string]bool{}
	for _, kp := range w.KeysByPopularity("country") {
		countries[strings.ToLower(kp.Key)] = true
	}
	mayors := map[string]bool{}
	for _, kp := range w.KeysByPopularity("mayor") {
		mayors[strings.ToLower(kp.Key)] = true
	}
	for _, kp := range w.KeysByPopularity("city") {
		c, ok := w.Fact("city", kp.Key, "country")
		if !ok {
			t.Fatalf("city %s has no country", kp.Key)
		}
		if !countries[strings.ToLower(c.AsString())] {
			t.Errorf("city %s references unknown country %q", kp.Key, c.AsString())
		}
		m, _ := w.Fact("city", kp.Key, "mayor")
		if !mayors[strings.ToLower(m.AsString())] {
			t.Errorf("city %s references unknown mayor %q", kp.Key, m.AsString())
		}
	}
	// Employees reference valid alpha-3 codes.
	codes := map[string]bool{}
	for _, kp := range w.KeysByPopularity("country") {
		code, _ := w.Fact("country", kp.Key, "code")
		codes[code.AsString()] = true
	}
	emp := w.Relation("employees")
	idx := emp.Schema.IndexOf("", "countryCode")
	for _, row := range emp.Rows {
		if !codes[row[idx].AsString()] {
			t.Errorf("employee references unknown code %q", row[idx].AsString())
		}
	}
}

func TestOtherValue(t *testing.T) {
	w := Build()
	v, ok := w.OtherValue("country", "Italy", "code", 3)
	if !ok || v.AsString() == "ITA" {
		t.Errorf("OtherValue must not return the excluded entity's value: %v", v)
	}
	if _, ok := w.OtherValue("nope", "x", "y", 0); ok {
		t.Error("unknown relation should fail")
	}
}

func TestTableDefs(t *testing.T) {
	w := Build()
	def := w.Def("airport")
	if def.KeyColumn != "iata" {
		t.Errorf("airport key = %q", def.KeyColumn)
	}
	if def.KeyIndex() != 0 {
		t.Errorf("airport key index = %d", def.KeyIndex())
	}
	if w.Def("nope") != nil {
		t.Error("unknown def should be nil")
	}
}

func TestDerivedAttributes(t *testing.T) {
	w := Build()
	d, ok := w.DerivedAttr("city", "mayor_birth_date")
	if !ok || d.Via != "mayor" || d.Target != "mayor" || d.TargetAttr != "birth_date" {
		t.Fatalf("DerivedAttr = %+v, %v", d, ok)
	}
	// Fact resolves through the chain and agrees with the direct lookup.
	mayor, _ := w.Fact("city", "Paris", "mayor")
	want, _ := w.Fact("mayor", mayor.AsString(), "birth_date")
	got, ok := w.Fact("city", "Paris", "mayor_birth_date")
	if !ok || !value.Equal(got, want) {
		t.Errorf("derived fact = %v, want %v", got, want)
	}
	// FindAttr resolves the humanized label.
	attr, ok := w.FindAttr("city", "mayor birth date")
	if !ok || attr != "mayor_birth_date" {
		t.Errorf("FindAttr derived = %q, %v", attr, ok)
	}
	if _, ok := w.DerivedAttr("city", "population"); ok {
		t.Error("population is not derived")
	}
}
