package world

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/schema"
	"repro/internal/value"
)

// The entity tables below are ordered most-famous-first; popularity decays
// with position (see addTable). Values are plausible approximations of the
// real world circa the paper's evaluation — the point is a consistent
// synthetic world shared by the ground-truth DB and the simulated LLMs,
// not an almanac.

type countryRow struct {
	name, code, code2, continent string
	population                   int64
	area, gdp                    float64 // km², billions USD
	capital                      string
	indep                        int64
	language, currency           string
}

var countryData = []countryRow{
	{"United States", "USA", "US", "North America", 331900000, 9833520, 25460, "Washington D.C.", 1776, "English", "US Dollar"},
	{"China", "CHN", "CN", "Asia", 1412000000, 9596960, 17960, "Beijing", 1949, "Mandarin", "Renminbi"},
	{"India", "IND", "IN", "Asia", 1408000000, 3287263, 3390, "New Delhi", 1947, "Hindi", "Indian Rupee"},
	{"United Kingdom", "GBR", "GB", "Europe", 67330000, 243610, 3070, "London", 1707, "English", "Pound Sterling"},
	{"France", "FRA", "FR", "Europe", 67750000, 643801, 2780, "Paris", 843, "French", "Euro"},
	{"Germany", "DEU", "DE", "Europe", 83200000, 357022, 4070, "Berlin", 1871, "German", "Euro"},
	{"Japan", "JPN", "JP", "Asia", 125700000, 377915, 4230, "Tokyo", 660, "Japanese", "Yen"},
	{"Brazil", "BRA", "BR", "South America", 214300000, 8515770, 1920, "Brasilia", 1822, "Portuguese", "Real"},
	{"Italy", "ITA", "IT", "Europe", 59110000, 301340, 2010, "Rome", 1861, "Italian", "Euro"},
	{"Canada", "CAN", "CA", "North America", 38250000, 9984670, 2140, "Ottawa", 1867, "English", "Canadian Dollar"},
	{"Russia", "RUS", "RU", "Europe", 143400000, 17098242, 2240, "Moscow", 1991, "Russian", "Ruble"},
	{"Australia", "AUS", "AU", "Oceania", 25690000, 7741220, 1680, "Canberra", 1901, "English", "Australian Dollar"},
	{"Spain", "ESP", "ES", "Europe", 47420000, 505370, 1400, "Madrid", 1479, "Spanish", "Euro"},
	{"Mexico", "MEX", "MX", "North America", 126700000, 1964375, 1410, "Mexico City", 1810, "Spanish", "Mexican Peso"},
	{"South Korea", "KOR", "KR", "Asia", 51740000, 99720, 1670, "Seoul", 1948, "Korean", "Won"},
	{"Indonesia", "IDN", "ID", "Asia", 273800000, 1904569, 1320, "Jakarta", 1945, "Indonesian", "Rupiah"},
	{"Netherlands", "NLD", "NL", "Europe", 17530000, 41543, 990, "Amsterdam", 1581, "Dutch", "Euro"},
	{"Turkey", "TUR", "TR", "Asia", 84780000, 783562, 910, "Ankara", 1923, "Turkish", "Lira"},
	{"Switzerland", "CHE", "CH", "Europe", 8700000, 41277, 810, "Bern", 1291, "German", "Swiss Franc"},
	{"Argentina", "ARG", "AR", "South America", 45810000, 2780400, 630, "Buenos Aires", 1816, "Spanish", "Argentine Peso"},
	{"Sweden", "SWE", "SE", "Europe", 10420000, 450295, 590, "Stockholm", 1523, "Swedish", "Krona"},
	{"Poland", "POL", "PL", "Europe", 37750000, 312685, 690, "Warsaw", 1918, "Polish", "Zloty"},
	{"Egypt", "EGY", "EG", "Africa", 109300000, 1001450, 480, "Cairo", 1922, "Arabic", "Egyptian Pound"},
	{"South Africa", "ZAF", "ZA", "Africa", 59390000, 1219090, 410, "Pretoria", 1910, "Zulu", "Rand"},
	{"Nigeria", "NGA", "NG", "Africa", 213400000, 923768, 480, "Abuja", 1960, "English", "Naira"},
	{"Greece", "GRC", "GR", "Europe", 10640000, 131957, 220, "Athens", 1821, "Greek", "Euro"},
	{"Portugal", "PRT", "PT", "Europe", 10330000, 92090, 250, "Lisbon", 1143, "Portuguese", "Euro"},
	{"Norway", "NOR", "NO", "Europe", 5408000, 323802, 580, "Oslo", 1905, "Norwegian", "Krone"},
	{"Austria", "AUT", "AT", "Europe", 8956000, 83871, 470, "Vienna", 1955, "German", "Euro"},
	{"Belgium", "BEL", "BE", "Europe", 11590000, 30528, 580, "Brussels", 1830, "Dutch", "Euro"},
	{"Thailand", "THA", "TH", "Asia", 71600000, 513120, 500, "Bangkok", 1238, "Thai", "Baht"},
	{"Ireland", "IRL", "IE", "Europe", 5033000, 70273, 530, "Dublin", 1922, "English", "Euro"},
	{"Denmark", "DNK", "DK", "Europe", 5857000, 43094, 400, "Copenhagen", 1849, "Danish", "Krone"},
	{"Finland", "FIN", "FI", "Europe", 5541000, 338145, 280, "Helsinki", 1917, "Finnish", "Euro"},
	{"Vietnam", "VNM", "VN", "Asia", 97470000, 331210, 410, "Hanoi", 1945, "Vietnamese", "Dong"},
	{"Chile", "CHL", "CL", "South America", 19490000, 756102, 300, "Santiago", 1810, "Spanish", "Chilean Peso"},
	{"Colombia", "COL", "CO", "South America", 51520000, 1138910, 340, "Bogota", 1810, "Spanish", "Colombian Peso"},
	{"Czech Republic", "CZE", "CZ", "Europe", 10510000, 78867, 290, "Prague", 1993, "Czech", "Koruna"},
	{"Peru", "PER", "PE", "South America", 33720000, 1285216, 240, "Lima", 1821, "Spanish", "Sol"},
	{"New Zealand", "NZL", "NZ", "Oceania", 5123000, 267710, 250, "Wellington", 1907, "English", "New Zealand Dollar"},
	{"Hungary", "HUN", "HU", "Europe", 9710000, 93028, 180, "Budapest", 1918, "Hungarian", "Forint"},
	{"Morocco", "MAR", "MA", "Africa", 37080000, 446550, 130, "Rabat", 1956, "Arabic", "Dirham"},
	{"Kenya", "KEN", "KE", "Africa", 53010000, 580367, 110, "Nairobi", 1963, "Swahili", "Kenyan Shilling"},
	{"Iceland", "ISL", "IS", "Europe", 372000, 103000, 28, "Reykjavik", 1944, "Icelandic", "Krona"},
	{"Croatia", "HRV", "HR", "Europe", 3899000, 56594, 70, "Zagreb", 1991, "Croatian", "Euro"},
	{"Uruguay", "URY", "UY", "South America", 3426000, 176215, 71, "Montevideo", 1825, "Spanish", "Uruguayan Peso"},
	{"Slovenia", "SVN", "SI", "Europe", 2108000, 20273, 62, "Ljubljana", 1991, "Slovene", "Euro"},
	{"Estonia", "EST", "EE", "Europe", 1331000, 45228, 38, "Tallinn", 1918, "Estonian", "Euro"},
}

// countryNameAliases lists common alternate spellings used as surface-form
// noise and fixed by the canonicalizer.
var countryNameAliases = map[string]string{
	"USA":               "United States",
	"U.S.":              "United States",
	"US":                "United States",
	"UK":                "United Kingdom",
	"Great Britain":     "United Kingdom",
	"Holland":           "Netherlands",
	"Republic of Korea": "South Korea",
}

// countryOfficialNames is the entity-level alternate spelling of every
// country — the long/official form a model may emit when referencing the
// country from another relation's prompt, which is exactly the kind of
// surface-form inconsistency the paper observed breaking joins.
var countryOfficialNames = map[string]string{
	"United States":  "United States of America",
	"China":          "People's Republic of China",
	"India":          "Republic of India",
	"United Kingdom": "United Kingdom of Great Britain and Northern Ireland",
	"France":         "French Republic",
	"Germany":        "Federal Republic of Germany",
	"Japan":          "State of Japan",
	"Brazil":         "Federative Republic of Brazil",
	"Italy":          "Italian Republic",
	"Canada":         "Dominion of Canada",
	"Russia":         "Russian Federation",
	"Australia":      "Commonwealth of Australia",
	"Spain":          "Kingdom of Spain",
	"Mexico":         "United Mexican States",
	"South Korea":    "Republic of Korea",
	"Indonesia":      "Republic of Indonesia",
	"Netherlands":    "Kingdom of the Netherlands",
	"Turkey":         "Republic of Türkiye",
	"Switzerland":    "Swiss Confederation",
	"Argentina":      "Argentine Republic",
	"Sweden":         "Kingdom of Sweden",
	"Poland":         "Republic of Poland",
	"Egypt":          "Arab Republic of Egypt",
	"South Africa":   "Republic of South Africa",
	"Nigeria":        "Federal Republic of Nigeria",
	"Greece":         "Hellenic Republic",
	"Portugal":       "Portuguese Republic",
	"Norway":         "Kingdom of Norway",
	"Austria":        "Republic of Austria",
	"Belgium":        "Kingdom of Belgium",
	"Thailand":       "Kingdom of Thailand",
	"Ireland":        "Republic of Ireland",
	"Denmark":        "Kingdom of Denmark",
	"Finland":        "Republic of Finland",
	"Vietnam":        "Socialist Republic of Vietnam",
	"Chile":          "Republic of Chile",
	"Colombia":       "Republic of Colombia",
	"Czech Republic": "Czechia",
	"Peru":           "Republic of Peru",
	"New Zealand":    "Aotearoa New Zealand",
	"Hungary":        "Republic of Hungary",
	"Morocco":        "Kingdom of Morocco",
	"Kenya":          "Republic of Kenya",
	"Iceland":        "Republic of Iceland",
	"Croatia":        "Republic of Croatia",
	"Uruguay":        "Oriental Republic of Uruguay",
	"Slovenia":       "Republic of Slovenia",
	"Estonia":        "Republic of Estonia",
}

func (w *World) addCountries() {
	def := &schema.TableDef{
		Name:      "country",
		KeyColumn: "name",
		Schema: schema.New(
			col("name", value.KindString),
			col("code", value.KindString),
			col("continent", value.KindString),
			col("population", value.KindInt),
			col("area", value.KindFloat),
			col("gdp", value.KindFloat),
			col("capital", value.KindString),
			col("independence_year", value.KindInt),
			col("language", value.KindString),
			col("currency", value.KindString),
		),
	}
	rows := make([]schema.Tuple, len(countryData))
	for i, c := range countryData {
		rows[i] = schema.Tuple{
			value.Text(c.name), value.Text(c.code), value.Text(c.continent),
			value.Int(c.population), value.Float(c.area), value.Float(c.gdp),
			value.Text(c.capital), value.Int(c.indep),
			value.Text(c.language), value.Text(c.currency),
		}
	}
	w.addTable(def, rows)
	for _, c := range countryData {
		// Alternate surface form of the code: the alpha-2 spelling the
		// paper saw break joins ("IT" vs "ITA").
		w.addAlt("country", c.name, "code", c.code2)
		if official, ok := countryOfficialNames[c.name]; ok {
			w.addEntityAlt("country", c.name, official)
		}
	}
	for alias, canonical := range countryNameAliases {
		w.aliases[lower(alias)] = canonical
	}
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

type cityRow struct {
	name, country string
	population    int64
	elevation     int64
	founded       int64
}

var cityData = []cityRow{
	{"New York City", "United States", 8468000, 10, 1624},
	{"London", "United Kingdom", 8982000, 11, 47},
	{"Paris", "France", 2161000, 35, -250},
	{"Tokyo", "Japan", 13960000, 40, 1457},
	{"Los Angeles", "United States", 3849000, 87, 1781},
	{"Chicago", "United States", 2697000, 181, 1833},
	{"Berlin", "Germany", 3645000, 34, 1237},
	{"Rome", "Italy", 2873000, 21, -753},
	{"Madrid", "Spain", 3223000, 667, 860},
	{"Sydney", "Australia", 5312000, 3, 1788},
	{"Toronto", "Canada", 2930000, 76, 1793},
	{"Moscow", "Russia", 12500000, 156, 1147},
	{"Beijing", "China", 21540000, 43, -1045},
	{"Shanghai", "China", 24280000, 4, 751},
	{"Mumbai", "India", 12440000, 14, 1507},
	{"San Francisco", "United States", 873000, 16, 1776},
	{"Amsterdam", "Netherlands", 872000, -2, 1275},
	{"Barcelona", "Spain", 1620000, 12, -218},
	{"Vienna", "Austria", 1897000, 193, -500},
	{"Seoul", "South Korea", 9776000, 38, -18},
	{"Mexico City", "Mexico", 9209000, 2240, 1325},
	{"Sao Paulo", "Brazil", 12330000, 760, 1554},
	{"Buenos Aires", "Argentina", 3075000, 25, 1536},
	{"Istanbul", "Turkey", 15460000, 39, -657},
	{"Cairo", "Egypt", 9540000, 23, 969},
	{"Bangkok", "Thailand", 10540000, 1, 1782},
	{"Singapore", "Indonesia", 5454000, 15, 1819},
	{"Dublin", "Ireland", 555000, 20, 841},
	{"Lisbon", "Portugal", 545000, 2, -1200},
	{"Athens", "Greece", 664000, 70, -3000},
	{"Stockholm", "Sweden", 975000, 28, 1252},
	{"Copenhagen", "Denmark", 602000, 14, 1167},
	{"Oslo", "Norway", 697000, 23, 1040},
	{"Helsinki", "Finland", 656000, 16, 1550},
	{"Warsaw", "Poland", 1790000, 100, 1300},
	{"Prague", "Czech Republic", 1309000, 177, 885},
	{"Budapest", "Hungary", 1752000, 102, 1873},
	{"Brussels", "Belgium", 1209000, 13, 580},
	{"Zurich", "Switzerland", 421000, 408, -15},
	{"Milan", "Italy", 1372000, 120, -400},
	{"Munich", "Germany", 1488000, 520, 1158},
	{"Hamburg", "Germany", 1841000, 6, 808},
	{"Lyon", "France", 516000, 173, -43},
	{"Naples", "Italy", 959000, 17, -600},
	{"Melbourne", "Australia", 5078000, 31, 1835},
	{"Vancouver", "Canada", 675000, 2, 1886},
	{"Montreal", "Canada", 1780000, 36, 1642},
	{"Boston", "United States", 675000, 43, 1630},
	{"Seattle", "United States", 737000, 53, 1851},
	{"Miami", "United States", 442000, 2, 1896},
	{"Houston", "United States", 2288000, 12, 1836},
	{"Tampa", "United States", 384000, 15, 1823},
	{"Denver", "United States", 715000, 1609, 1858},
	{"Atlanta", "United States", 499000, 320, 1837},
	{"Lima", "Peru", 9752000, 161, 1535},
	{"Bogota", "Colombia", 7412000, 2640, 1538},
	{"Santiago", "Chile", 6160000, 570, 1541},
	{"Auckland", "New Zealand", 1463000, 20, 1840},
	{"Nairobi", "Kenya", 4397000, 1795, 1899},
	{"Casablanca", "Morocco", 3359000, 27, 768},
	{"Reykjavik", "Iceland", 131000, 15, 874},
	{"Zagreb", "Croatia", 769000, 158, 1094},
	{"Montevideo", "Uruguay", 1319000, 43, 1724},
	{"Ljubljana", "Slovenia", 295000, 295, -50},
	{"Tallinn", "Estonia", 437000, 9, 1248},
}

// mayorFirst and mayorLast seed the deterministic fictional mayors; the
// real ones change too often for a frozen ground truth, and the simulated
// LLM only needs internally consistent facts.
var mayorFirst = []string{
	"Elena", "Marcus", "Sofia", "David", "Amara", "Lucas", "Nadia", "Viktor",
	"Clara", "Omar", "Ingrid", "Pablo", "Yuki", "Henrik", "Leila", "Tomas",
}

var mayorLast = []string{
	"Moreau", "Lindqvist", "Okafor", "Tanaka", "Rossi", "Weber", "Novak",
	"Silva", "Haddad", "Petrov", "Jensen", "Garcia", "Kowalski", "Byrne",
}

func (w *World) addCities() {
	cityDef := &schema.TableDef{
		Name:      "city",
		KeyColumn: "name",
		Schema: schema.New(
			col("name", value.KindString),
			col("country", value.KindString),
			col("population", value.KindInt),
			col("mayor", value.KindString),
			col("elevation", value.KindInt),
			col("founded_year", value.KindInt),
		),
	}
	mayorDef := &schema.TableDef{
		Name:      "mayor",
		KeyColumn: "name",
		Schema: schema.New(
			col("name", value.KindString),
			col("city", value.KindString),
			col("birth_date", value.KindDate),
			col("age", value.KindInt),
			col("election_year", value.KindInt),
			col("party", value.KindString),
		),
	}
	parties := []string{"Civic Alliance", "Progress Party", "Green Coalition", "Liberal Union", "City First"}

	cityRows := make([]schema.Tuple, len(cityData))
	mayorRows := make([]schema.Tuple, len(cityData))
	for i, c := range cityData {
		// Deterministic fictional mayor per city.
		first := mayorFirst[(i*7+3)%len(mayorFirst)]
		last := mayorLast[(i*5+1)%len(mayorLast)]
		mayorName := first + " " + last
		birthYear := 1955 + (i*13+7)%40 // 1955..1994
		birthMonth := 1 + (i*11)%12
		birthDay := 1 + (i*17)%28
		election := 2014 + (i*3+1)%10 // 2014..2023
		age := 2023 - birthYear

		cityRows[i] = schema.Tuple{
			value.Text(c.name), value.Text(c.country), value.Int(c.population),
			value.Text(mayorName), value.Int(c.elevation), value.Int(c.founded),
		}
		mayorRows[i] = schema.Tuple{
			value.Text(mayorName), value.Text(c.name),
			value.Date(birthYear, time.Month(birthMonth), birthDay),
			value.Int(int64(age)), value.Int(int64(election)),
			value.Text(parties[(i*3)%len(parties)]),
		}
	}
	w.addTable(cityDef, cityRows)
	w.addTable(mayorDef, mayorRows)
	for i, c := range cityData {
		// Entity-level alternates: a model referencing a city from
		// another relation may qualify it ("Paris, France"); a mayor may
		// come back with an initialed first name ("E. Moreau").
		w.addEntityAlt("city", c.name, c.name+", "+c.country)
		mayorName := cityRows[i][3].String()
		parts := strings.SplitN(mayorName, " ", 2)
		if len(parts) == 2 {
			w.addEntityAlt("mayor", mayorName, parts[0][:1]+". "+parts[1])
		}
	}
}

type airportRow struct {
	iata, name, city, country string
	passengers                float64 // millions per year
	runways                   int64
}

var airportData = []airportRow{
	{"ATL", "Hartsfield-Jackson Atlanta International Airport", "Atlanta", "United States", 93.7, 5},
	{"LHR", "London Heathrow Airport", "London", "United Kingdom", 61.6, 2},
	{"JFK", "John F. Kennedy International Airport", "New York City", "United States", 55.3, 4},
	{"CDG", "Charles de Gaulle Airport", "Paris", "France", 57.5, 4},
	{"LAX", "Los Angeles International Airport", "Los Angeles", "United States", 65.8, 4},
	{"HND", "Tokyo Haneda Airport", "Tokyo", "Japan", 64.2, 4},
	{"ORD", "O'Hare International Airport", "Chicago", "United States", 68.3, 8},
	{"FRA", "Frankfurt Airport", "Hamburg", "Germany", 48.9, 4},
	{"AMS", "Amsterdam Airport Schiphol", "Amsterdam", "Netherlands", 52.5, 6},
	{"MAD", "Adolfo Suarez Madrid-Barajas Airport", "Madrid", "Spain", 50.6, 4},
	{"PEK", "Beijing Capital International Airport", "Beijing", "China", 52.9, 3},
	{"SYD", "Sydney Kingsford Smith Airport", "Sydney", "Australia", 38.6, 3},
	{"YYZ", "Toronto Pearson International Airport", "Toronto", "Canada", 35.6, 5},
	{"SVO", "Sheremetyevo International Airport", "Moscow", "Russia", 28.4, 2},
	{"BOM", "Chhatrapati Shivaji Maharaj International Airport", "Mumbai", "India", 43.3, 2},
	{"SFO", "San Francisco International Airport", "San Francisco", "United States", 42.0, 4},
	{"BCN", "Barcelona-El Prat Airport", "Barcelona", "Spain", 41.6, 3},
	{"VIE", "Vienna International Airport", "Vienna", "Austria", 29.5, 2},
	{"ICN", "Incheon International Airport", "Seoul", "South Korea", 47.7, 3},
	{"MEX", "Mexico City International Airport", "Mexico City", "Mexico", 46.3, 2},
	{"GRU", "Sao Paulo-Guarulhos International Airport", "Sao Paulo", "Brazil", 34.5, 2},
	{"EZE", "Ministro Pistarini International Airport", "Buenos Aires", "Argentina", 9.9, 2},
	{"IST", "Istanbul Airport", "Istanbul", "Turkey", 64.5, 5},
	{"CAI", "Cairo International Airport", "Cairo", "Egypt", 14.7, 3},
	{"BKK", "Suvarnabhumi Airport", "Bangkok", "Thailand", 55.9, 2},
	{"DUB", "Dublin Airport", "Dublin", "Ireland", 32.9, 2},
	{"LIS", "Humberto Delgado Airport", "Lisbon", "Portugal", 31.2, 2},
	{"ATH", "Athens International Airport", "Athens", "Greece", 25.6, 2},
	{"ARN", "Stockholm Arlanda Airport", "Stockholm", "Sweden", 25.6, 3},
	{"CPH", "Copenhagen Airport", "Copenhagen", "Denmark", 30.3, 3},
	{"OSL", "Oslo Gardermoen Airport", "Oslo", "Norway", 28.6, 2},
	{"HEL", "Helsinki-Vantaa Airport", "Helsinki", "Finland", 21.9, 3},
	{"WAW", "Warsaw Chopin Airport", "Warsaw", "Poland", 18.9, 2},
	{"PRG", "Vaclav Havel Airport Prague", "Prague", "Czech Republic", 17.8, 2},
	{"BUD", "Budapest Ferenc Liszt International Airport", "Budapest", "Hungary", 16.2, 2},
	{"ZRH", "Zurich Airport", "Zurich", "Switzerland", 31.1, 3},
	{"KEF", "Keflavik International Airport", "Reykjavik", "Iceland", 7.2, 2},
}

func (w *World) addAirports() {
	def := &schema.TableDef{
		Name:      "airport",
		KeyColumn: "iata",
		Schema: schema.New(
			col("iata", value.KindString),
			col("name", value.KindString),
			col("city", value.KindString),
			col("country", value.KindString),
			col("passengers", value.KindFloat),
			col("runways", value.KindInt),
		),
	}
	rows := make([]schema.Tuple, len(airportData))
	for i, a := range airportData {
		rows[i] = schema.Tuple{
			value.Text(a.iata), value.Text(a.name), value.Text(a.city),
			value.Text(a.country), value.Float(a.passengers), value.Int(a.runways),
		}
	}
	w.addTable(def, rows)
}

type singerRow struct {
	name, country string
	birthYear     int64
	genre         string
	albums        int64
}

var singerData = []singerRow{
	{"Aria Bennett", "United States", 1989, "Pop", 7},
	{"Liam Hartley", "United Kingdom", 1991, "Pop", 5},
	{"Camille Dubois", "France", 1984, "Chanson", 9},
	{"Matteo Ferri", "Italy", 1978, "Opera", 12},
	{"Hana Sato", "Japan", 1995, "J-Pop", 4},
	{"Klara Svensson", "Sweden", 1986, "Electropop", 6},
	{"Diego Morales", "Mexico", 1982, "Latin", 10},
	{"Amina Diallo", "France", 1993, "R&B", 3},
	{"Jonas Keller", "Germany", 1975, "Rock", 14},
	{"Isabela Costa", "Brazil", 1990, "Bossa Nova", 5},
	{"Minji Park", "South Korea", 1998, "K-Pop", 3},
	{"Owen Gallagher", "Ireland", 1980, "Folk", 8},
	{"Anastasia Volkov", "Russia", 1987, "Classical", 6},
	{"Thabo Nkosi", "South Africa", 1985, "Jazz", 7},
	{"Lucia Herrera", "Spain", 1992, "Flamenco", 4},
	{"Erik Johansen", "Norway", 1983, "Indie", 6},
	{"Priya Sharma", "India", 1988, "Playback", 11},
	{"Nikos Papadopoulos", "Greece", 1971, "Laiko", 15},
	{"Zeynep Yilmaz", "Turkey", 1994, "Pop", 2},
	{"Santiago Rojas", "Colombia", 1986, "Reggaeton", 5},
	{"Freya Madsen", "Denmark", 1996, "Synth-pop", 2},
	{"Marco Bianchi", "Italy", 1969, "Pop Rock", 16},
	{"Aoife Murphy", "Ireland", 1999, "Folk", 1},
	{"Viktor Horvath", "Hungary", 1979, "Rock", 9},
	{"Chen Wei", "China", 1990, "Mandopop", 6},
	{"Sofia Lindgren", "Sweden", 1997, "Pop", 2},
}

func (w *World) addSingers() {
	def := &schema.TableDef{
		Name:      "singer",
		KeyColumn: "name",
		Schema: schema.New(
			col("name", value.KindString),
			col("country", value.KindString),
			col("birth_year", value.KindInt),
			col("genre", value.KindString),
			col("albums", value.KindInt),
		),
	}
	rows := make([]schema.Tuple, len(singerData))
	for i, s := range singerData {
		rows[i] = schema.Tuple{
			value.Text(s.name), value.Text(s.country), value.Int(s.birthYear),
			value.Text(s.genre), value.Int(s.albums),
		}
	}
	w.addTable(def, rows)
}

type stadiumRow struct {
	name, city, country string
	capacity            int64
	opened              int64
}

var stadiumData = []stadiumRow{
	{"Wembley Stadium", "London", "United Kingdom", 90000, 2007},
	{"Camp Nou", "Barcelona", "Spain", 99354, 1957},
	{"Maracana", "Sao Paulo", "Brazil", 78838, 1950},
	{"San Siro", "Milan", "Italy", 80018, 1926},
	{"Allianz Arena", "Munich", "Germany", 75024, 2005},
	{"Santiago Bernabeu", "Madrid", "Spain", 81044, 1947},
	{"Stade de France", "Paris", "France", 80698, 1998},
	{"MetLife Stadium", "New York City", "United States", 82500, 2010},
	{"Melbourne Cricket Ground", "Melbourne", "Australia", 100024, 1853},
	{"Luzhniki Stadium", "Moscow", "Russia", 81000, 1956},
	{"Azteca Stadium", "Mexico City", "Mexico", 87523, 1966},
	{"Soldier Field", "Chicago", "United States", 61500, 1924},
	{"Olympiastadion", "Berlin", "Germany", 74475, 1936},
	{"Johan Cruyff Arena", "Amsterdam", "Netherlands", 55500, 1996},
	{"Parken Stadium", "Copenhagen", "Denmark", 38065, 1992},
	{"Aviva Stadium", "Dublin", "Ireland", 51700, 2010},
	{"Ataturk Olympic Stadium", "Istanbul", "Turkey", 76092, 2002},
	{"Seoul World Cup Stadium", "Seoul", "South Korea", 66704, 2001},
	{"National Stadium", "Warsaw", "Poland", 58580, 2012},
	{"Puskas Arena", "Budapest", "Hungary", 67215, 2019},
	{"Estadio Monumental", "Buenos Aires", "Argentina", 83196, 1938},
	{"BC Place", "Vancouver", "Canada", 54500, 1983},
}

func (w *World) addStadiums() {
	def := &schema.TableDef{
		Name:      "stadium",
		KeyColumn: "name",
		Schema: schema.New(
			col("name", value.KindString),
			col("city", value.KindString),
			col("country", value.KindString),
			col("capacity", value.KindInt),
			col("opened_year", value.KindInt),
		),
	}
	rows := make([]schema.Tuple, len(stadiumData))
	for i, s := range stadiumData {
		rows[i] = schema.Tuple{
			value.Text(s.name), value.Text(s.city), value.Text(s.country),
			value.Int(s.capacity), value.Int(s.opened),
		}
	}
	w.addTable(def, rows)
}

type mountainRow struct {
	name, country string
	height        int64
	mrange        string
}

var mountainData = []mountainRow{
	{"Mount Everest", "China", 8849, "Himalayas"},
	{"K2", "China", 8611, "Karakoram"},
	{"Mont Blanc", "France", 4808, "Alps"},
	{"Matterhorn", "Switzerland", 4478, "Alps"},
	{"Denali", "United States", 6190, "Alaska Range"},
	{"Aconcagua", "Argentina", 6961, "Andes"},
	{"Mount Fuji", "Japan", 3776, "Fuji Volcanic Zone"},
	{"Kilimanjaro", "Kenya", 5895, "Eastern Rift"},
	{"Mount Elbrus", "Russia", 5642, "Caucasus"},
	{"Zugspitze", "Germany", 2962, "Alps"},
	{"Ben Nevis", "United Kingdom", 1345, "Grampians"},
	{"Mount Kosciuszko", "Australia", 2228, "Snowy Mountains"},
	{"Mulhacen", "Spain", 3479, "Sierra Nevada"},
	{"Gran Paradiso", "Italy", 4061, "Alps"},
	{"Galdhopiggen", "Norway", 2469, "Jotunheimen"},
	{"Mount Cook", "New Zealand", 3724, "Southern Alps"},
	{"Pico de Orizaba", "Mexico", 5636, "Trans-Mexican Belt"},
	{"Mount Logan", "Canada", 5959, "Saint Elias"},
	{"Huascaran", "Peru", 6768, "Andes"},
	{"Ojos del Salado", "Chile", 6893, "Andes"},
	{"Rysy", "Poland", 2499, "Tatras"},
	{"Musala", "Greece", 2925, "Rila"},
	{"Triglav", "Slovenia", 2864, "Julian Alps"},
	{"Carrauntoohil", "Ireland", 1038, "MacGillycuddy's Reeks"},
}

func (w *World) addMountains() {
	def := &schema.TableDef{
		Name:      "mountain",
		KeyColumn: "name",
		Schema: schema.New(
			col("name", value.KindString),
			col("country", value.KindString),
			col("height", value.KindInt),
			col("mountain_range", value.KindString),
		),
	}
	rows := make([]schema.Tuple, len(mountainData))
	for i, m := range mountainData {
		rows[i] = schema.Tuple{
			value.Text(m.name), value.Text(m.country), value.Int(m.height),
			value.Text(m.mrange),
		}
	}
	w.addTable(def, rows)
}

// addEmployees generates the DB-only Employees table used by the hybrid
// query example (Figure 2 / the GDP-vs-salary query in the introduction).
// It is deterministic and references country codes from the country table.
func (w *World) addEmployees() {
	def := &schema.TableDef{
		Name:      "employees",
		KeyColumn: "id",
		Schema: schema.New(
			col("id", value.KindInt),
			col("name", value.KindString),
			col("countryCode", value.KindString),
			col("salary", value.KindFloat),
			col("department", value.KindString),
		),
	}
	departments := []string{"Engineering", "Sales", "Marketing", "Finance", "Support"}
	first := []string{"Alex", "Sam", "Jordan", "Robin", "Casey", "Morgan", "Taylor", "Jamie"}
	last := []string{"Nguyen", "Patel", "Smith", "Muller", "Rossi", "Dubois", "Kim", "Lopez"}
	// Use the ten most famous countries so the hybrid join has matches.
	codes := make([]string, 0, 10)
	for i := 0; i < 10 && i < len(countryData); i++ {
		codes = append(codes, countryData[i].code)
	}
	var rows []schema.Tuple
	for i := 0; i < 48; i++ {
		name := fmt.Sprintf("%s %s", first[(i*3)%len(first)], last[(i*5+2)%len(last)])
		salary := 42000 + float64((i*7919)%60000)
		rows = append(rows, schema.Tuple{
			value.Int(int64(1000 + i)),
			value.Text(name),
			value.Text(codes[i%len(codes)]),
			value.Float(salary),
			value.Text(departments[i%len(departments)]),
		})
	}
	w.addTable(def, rows)
}
