package world

import (
	"strings"

	"repro/internal/value"
)

// DumpSQL renders one table as a CREATE TABLE + INSERT script that the
// memdb engine (and most SQL engines) can replay. The script round-trips:
// parsing and executing it reproduces the table exactly (see
// TestDumpSQLRoundTrip).
func DumpSQL(w *World, table string) string {
	t := w.Table(table)
	if t == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(t.Def.Name)
	b.WriteString(" (")
	for i, c := range t.Def.Schema.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(sqlTypeName(c.Type))
		if strings.EqualFold(c.Name, t.Def.KeyColumn) {
			b.WriteString(" PRIMARY KEY")
		}
	}
	b.WriteString(");\n")

	if len(t.Rows) == 0 {
		return b.String()
	}
	b.WriteString("INSERT INTO ")
	b.WriteString(t.Def.Name)
	b.WriteString(" VALUES\n")
	for i, row := range t.Rows {
		b.WriteString("  (")
		for j, v := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.SQLLiteral())
		}
		b.WriteByte(')')
		if i < len(t.Rows)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString(";\n")
	return b.String()
}

func sqlTypeName(k value.Kind) string {
	switch k {
	case value.KindInt:
		return "INTEGER"
	case value.KindFloat:
		return "FLOAT"
	case value.KindBool:
		return "BOOLEAN"
	case value.KindDate:
		return "DATE"
	default:
		return "TEXT"
	}
}
